"""Differential suite: the sparse kernel against the dense oracle.

The sparse backend (:mod:`repro.sim.sparse`) claims to be an *exact*
replacement for the dense every-cell walk.  This suite pins that claim:

* byte-identical :class:`~repro.sim.coverage.CoverageReport` outcomes
  (detections, escape witnesses and ``contexts_simulated`` accounting)
  on both paper fault lists, across memory sizes {3, 5, 16, 64} and
  both LF3 layouts;
* identical :func:`~repro.sim.engine.run_march` detection sites and
  :func:`~repro.sim.engine.escape_sites` diagnostics, including the
  wait/DRF and dynamic-fault paths the segment replay must thread
  exactly;
* hypothesis-randomized march tests (with waits and expectation-free
  reads) against stratified fault samples.

Plus unit tests of the :class:`~repro.sim.sparse.SparseMemory`
representation itself (packed snapshots, state materialization,
backend resolution).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from harness import assert_backends_identical, random_marches, stratified
from repro.faults.dynamic import dynamic_faults
from repro.faults.library import fp_by_name
from repro.faults.lists import fault_list_1, fault_list_2
from repro.faults.values import DONT_CARE
from repro.march.known import ALL_KNOWN
from repro.march.test import parse_march
from repro.memory.sram import FaultyMemory, partition_primitives
from repro.sim.coverage import make_instances, qualify_test
from repro.sim.engine import detects_instance, escape_sites, run_march
from repro.sim.backends import (
    backend_names,
    kernel_supported as sparse_supported,
    make_memory,
    resolve_backend,
)
from repro.sim.sparse import SparseMemory, blank_snapshot

#: The acceptance matrix of the sparse-kernel issue.
SIZES = (3, 5, 16, 64)
LAYOUTS = ("straddle", "all")


# ----------------------------------------------------------------------
# Acceptance matrix: paper fault lists x sizes x layouts
# ----------------------------------------------------------------------

class TestPaperListMatrix:
    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("test_name", ["March C-", "March SL"])
    def test_fl2_full_all_sizes(self, test_name, layout):
        test = ALL_KNOWN[test_name].test
        faults = fault_list_2()
        for size in SIZES:
            assert_backends_identical(test, faults, size, layout)

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_fl1_full_default_size(self, layout):
        # The full 876-fault list at the paper's memory size; larger
        # sizes use the stratified sample below to keep the dense
        # oracle affordable.
        test = ALL_KNOWN["March SL"].test
        assert_backends_identical(test, fault_list_1(), 3, layout)

    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("size", SIZES)
    def test_fl1_stratified_sample_matrix(self, size, layout):
        # ~30 faults spanning LF1/LF2aa/LF2av/LF2va/LF3 subclasses.
        faults = stratified(fault_list_1(), 30)
        assert {f.cells for f in faults} == {1, 2, 3}
        test = ALL_KNOWN["March ABL"].test
        assert_backends_identical(test, faults, size, layout)

    def test_incomplete_test_witnesses_identical(self):
        # March C- leaves FL#2 escapes; their witnesses must agree.
        test = ALL_KNOWN["March C-"].test
        faults = fault_list_2()
        dense = qualify_test(test, faults, 16, 6, "straddle", "dense")
        assert dense.escapes  # the comparison above must bite
        assert_backends_identical(test, faults, 16, "straddle")


# ----------------------------------------------------------------------
# Wait/DRF, dynamic and diagnostic paths
# ----------------------------------------------------------------------

WAIT_TESTS = [
    "c(w1) c(t,r1)",
    "c(w0) U(t) c(r0) D(w1,t,r1,w0) c(r0,t)",
    "c(w0) c(t,t,r0,w1,t) c(r1)",
]


class TestWaitAndDynamicPaths:
    @pytest.mark.parametrize("notation", WAIT_TESTS)
    def test_drf_wait_segments(self, notation):
        test = parse_march(notation, name=notation)
        faults = [fp_by_name("DRF0"), fp_by_name("DRF1"),
                  fp_by_name("SF0"), fp_by_name("SF1")]
        for size in SIZES:
            assert_backends_identical(test, faults, size, "straddle")

    def test_dynamic_faults_cross_element_pairing(self):
        # Back-to-back sensitizations across an element boundary (the
        # last cell of one sweep is the first of the next) depend on
        # the previous-op record the segment threading reconstructs.
        tests = [
            parse_march("c(w0) U(r0,w1) D(r1,w0) c(r0)", name="updown"),
            parse_march("c(w0) U(r0,r0) D(r0,w1,r1,r1) c(r1)", name="rr"),
            parse_march("c(w0) D(r0) U(r0) c(w1) d(r1,w0,r0)", name="mix"),
        ]
        faults = dynamic_faults()
        for test in tests:
            for size in (3, 7, 33):
                assert_backends_identical(test, faults, size, "straddle")

    def test_escape_sites_identical(self):
        test = parse_march("c(w0) U(r0,w1) D(r1,w0) c(r0)")
        for fault in stratified(fault_list_1(), 12) \
                + list(dynamic_faults()[:8]):
            for instance in make_instances(fault, 9):
                dense = escape_sites(test, instance, 9, backend="dense")
                sparse = escape_sites(test, instance, 9, backend="sparse")
                assert dense == sparse
                assert detects_instance(
                    test, instance, 9, backend="dense") == \
                    detects_instance(test, instance, 9, backend="sparse")

    def test_run_march_start_element_resume(self):
        test = parse_march("c(w0) U(r0,w1) D(r1,w0) c(r0)")
        fault = make_instances(fp_by_name("CFds_0w1_v0"), 8)[0]
        for start in range(len(test.elements)):
            dense = FaultyMemory(8, fault)
            sparse = SparseMemory(8, fault)
            dense_site = run_march(test, dense, start_element=start)
            sparse_site = run_march(test, sparse, start_element=start)
            assert dense_site == sparse_site
            if dense_site is None:
                # Post-detection memory state is unobservable (the run
                # ends); only escaping runs promise identical states.
                assert dense.state() == sparse.state()


# ----------------------------------------------------------------------
# Hypothesis: randomized march tests (strategy shared via harness)
# ----------------------------------------------------------------------

# A pool mixing every fault family the simulator knows: linked
# (1/2/3-cell), state maskers, DRF and dynamic pairs.
FAULT_POOL = (
    stratified(fault_list_1(), 16)
    + [fp_by_name("DRF0"), fp_by_name("DRF1")]
    + stratified(dynamic_faults(), 8)
)


class TestRandomizedDifferential:
    @given(
        march=random_marches(),
        size=st.sampled_from(SIZES),
        layout=st.sampled_from(LAYOUTS),
        lo=st.integers(min_value=0, max_value=len(FAULT_POOL) - 4),
    )
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_reports_identical(self, march, size, layout, lo):
        faults = FAULT_POOL[lo:lo + 4]
        assert_backends_identical(march, faults, size, layout)

    @given(march=random_marches(), size=st.sampled_from((3, 9, 64)))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_full_run_state_and_site_identical(self, march, size):
        fault = make_instances(fp_by_name("CFdr_a1_v1"), size)[0]
        dense = FaultyMemory(size, fault)
        sparse = SparseMemory(size, fault)
        resolution = (False, True, False, True, False)
        assert run_march(march, dense, resolution) == \
            run_march(march, sparse, resolution)


# ----------------------------------------------------------------------
# SparseMemory representation
# ----------------------------------------------------------------------

class TestSparseMemory:
    def test_backend_resolution(self):
        assert resolve_backend("dense") == "dense"
        assert resolve_backend("sparse") == "sparse"
        assert resolve_backend("auto", fault_list_2()) == "sparse"
        assert resolve_backend("auto", [object()]) == "dense"
        with pytest.raises(ValueError):
            resolve_backend("gpu")
        assert sparse_supported(None)
        assert not sparse_supported("address decoder fault")
        assert "auto" in backend_names()

    def test_auto_size_heuristic(self):
        # Below the crossover the bound cells cover the whole array;
        # auto keeps the dense walk there (identical results anyway).
        faults = fault_list_2()
        assert resolve_backend("auto", faults, 3) == "dense"
        assert resolve_backend("auto", faults, 4) == "sparse"
        assert resolve_backend("auto", faults, 4096) == "sparse"
        # Explicit selectors override the heuristic.
        assert resolve_backend("sparse", faults, 3) == "sparse"
        assert isinstance(make_memory(3, backend="sparse"), SparseMemory)
        assert not isinstance(
            make_memory(3, backend="auto"), SparseMemory)

    def test_make_memory_dispatch(self):
        fault = make_instances(fp_by_name("SF0"), 16)[0]
        assert isinstance(make_memory(16, fault, "sparse"), SparseMemory)
        assert isinstance(make_memory(16, fault, "auto"), SparseMemory)
        dense = make_memory(16, fault, "dense")
        assert isinstance(dense, FaultyMemory)
        assert not isinstance(dense, SparseMemory)

    def test_packed_snapshot_is_size_independent(self):
        fault_small = make_instances(fp_by_name("TFU"), 8)[0]
        fault_large = make_instances(fp_by_name("TFU"), 4096)[0]
        small = SparseMemory(8, fault_small)
        large = SparseMemory(4096, fault_large)
        assert small.packed_state() == blank_snapshot(1)
        assert large.packed_state() == blank_snapshot(1)
        small.write(3, 1)
        # A non-bound write is element-uniform: the whole homogeneity
        # class takes the value, and the packed form stays O(1).
        assert small.packed_state().bit_length() <= 2 * 2

    def test_packed_round_trip(self):
        fault = make_instances(fp_by_name("CFds_0w1_v0"), 64)[0]
        memory = SparseMemory(64, fault)
        run_march(parse_march("c(w0) U(r0,w1)"), memory)
        packed = memory.packed_state()
        other = SparseMemory(64, fault)
        other.load_packed(packed)
        assert other.state() == memory.state()
        assert other.packed_state() == packed

    def test_state_materialization_matches_dense(self):
        fault = make_instances(fp_by_name("CFtr_a0_0w1"), 11)[0]
        dense = FaultyMemory(11, fault)
        sparse = SparseMemory(11, fault)
        test = parse_march("c(w0) U(r0,w1) D(r1)")
        run_march(test, dense)
        run_march(test, sparse)
        assert sparse.state() == dense.state()

    def test_load_state_requires_homogeneous_segments(self):
        fault = make_instances(fp_by_name("SF0"), 5)[0]
        memory = SparseMemory(5, fault)
        memory.load_state((0, 0, 0, 0, 0))
        assert memory.state() == (0, 0, 0, 0, 0)
        with pytest.raises(ValueError, match="homogeneous"):
            memory.load_state((0, 1, 0, 0, 0))
        with pytest.raises(ValueError, match="size"):
            memory.load_state((0, 0))

    def test_initial_state_uninitialized(self):
        memory = SparseMemory(1000)
        assert memory[0] == DONT_CARE
        assert memory[999] == DONT_CARE
        assert memory.read(500) == DONT_CARE

    def test_partition_primitives_exposed(self):
        fault = make_instances(fault_list_1()[0], 3)[0]
        parts = partition_primitives(fault)
        assert parts.all == fault.primitives
        assert set(parts.state) | set(parts.operation) == set(parts.all)
        golden = partition_primitives(None)
        assert golden.all == () and golden.wait_sensitized == ()

    def test_golden_sparse_memory_runs_marches(self):
        test = parse_march("c(w0) U(r0,w1) D(r1,w0) c(r0)")
        assert run_march(test, SparseMemory(4096)) is None
