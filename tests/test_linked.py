"""Unit tests for linked-fault modelling (paper Definitions 6-7)."""

import pytest

from repro.faults.library import fp_by_name
from repro.faults.linked import (
    LinkedFault,
    Topology,
    are_linked,
    is_self_detecting,
    masks_silently,
)


class TestLinkingPredicate:
    def test_paper_equation_6_pair_is_linked(self):
        # <0w1; 0/1/-> -> <0w1; 1/0/->: the Disturb Coupling example.
        fp1 = fp_by_name("CFds_0w1_v0")
        fp2 = fp_by_name("CFds_0w1_v1")
        assert are_linked(fp1, fp2)

    def test_masking_requires_opposite_effects(self):
        fp1 = fp_by_name("CFds_0w1_v0")   # F1 = 1
        same_effect = fp_by_name("CFds_1w0_v0")  # also flips 0 -> 1
        assert not are_linked(fp1, same_effect)

    def test_fp2_initial_state_must_chain(self):
        # I2 = Fv1: FP2 must be sensitized in the state FP1 produced.
        fp1 = fp_by_name("TFU")           # leaves the cell at 0
        wrong_state = fp_by_name("WDF1")  # needs the cell at 1
        assert not are_linked(fp1, wrong_state)
        right_state = fp_by_name("WDF0")  # needs the cell at 0, flips
        assert are_linked(fp1, right_state)

    def test_non_flipping_fp1_cannot_be_masked(self):
        irf = fp_by_name("IRF0")          # reads wrong, no state change
        assert not are_linked(irf, fp_by_name("WDF0"))


class TestSelfDetection:
    @pytest.mark.parametrize("name", ["RDF0", "RDF1", "IRF0", "IRF1",
                                      "CFrd_a0_v0", "CFir_a1_v1"])
    def test_wrong_value_reads_self_detect(self, name):
        assert is_self_detecting(fp_by_name(name))

    @pytest.mark.parametrize("name", ["TFU", "WDF0", "DRDF1", "SF0",
                                      "CFds_0w1_v0", "CFdr_a0_v0",
                                      "CFtr_a0_0w1", "CFwd_a1_v1"])
    def test_others_escape_their_own_sensitization(self, name):
        assert not is_self_detecting(fp_by_name(name))


class TestSilentMasking:
    def test_destructive_read_masker_is_silent(self):
        # RDF returns the restored value: perfectly silent masking.
        assert masks_silently(fp_by_name("TFU"), fp_by_name("RDF0"))

    def test_deceptive_read_masker_reveals_itself(self):
        # DRDF returns the old (faulty) value at the masking read.
        assert not masks_silently(fp_by_name("TFU"), fp_by_name("DRDF0"))

    def test_write_maskers_are_silent(self):
        assert masks_silently(fp_by_name("TFU"), fp_by_name("WDF0"))

    def test_aggressor_op_maskers_are_silent(self):
        assert masks_silently(
            fp_by_name("CFds_0w1_v0"), fp_by_name("CFds_0w1_v1"))

    def test_state_fault_maskers_are_silent(self):
        assert masks_silently(fp_by_name("TFU"), fp_by_name("SF0"))


class TestTopology:
    def test_cell_counts(self):
        assert Topology.LF1.cells == 1
        assert Topology.LF2AA.cells == 2
        assert Topology.LF2AV.cells == 2
        assert Topology.LF2VA.cells == 2
        assert Topology.LF3.cells == 3

    def test_topology_validates_fp_shapes(self):
        fp1 = fp_by_name("TFU")
        fp2 = fp_by_name("WDF0")
        with pytest.raises(ValueError):
            LinkedFault(fp1, fp2, Topology.LF2AA)  # needs two-cell FPs

    def test_linked_fault_rejects_unlinked_pairs(self):
        with pytest.raises(ValueError):
            LinkedFault(
                fp_by_name("TFU"), fp_by_name("WDF1"), Topology.LF1)


class TestRoleMapping:
    def test_lf1_roles(self):
        lf = LinkedFault(
            fp_by_name("TFU"), fp_by_name("WDF0"), Topology.LF1)
        assert lf.cells == 1
        assert lf.role_labels == ("v",)
        assert lf.fp_roles(1) == (None, 0)
        assert lf.fp_roles(2) == (None, 0)

    def test_lf2aa_roles(self):
        lf = LinkedFault(
            fp_by_name("CFds_0w1_v0"), fp_by_name("CFds_0w1_v1"),
            Topology.LF2AA)
        assert lf.role_labels == ("a", "v")
        assert lf.fp_roles(1) == (0, 1)
        assert lf.fp_roles(2) == (0, 1)

    def test_lf2av_roles(self):
        lf = LinkedFault(
            fp_by_name("CFds_0w1_v0"), fp_by_name("WDF1"),
            Topology.LF2AV)
        assert lf.fp_roles(1) == (0, 1)
        assert lf.fp_roles(2) == (None, 1)

    def test_lf2va_roles(self):
        lf = LinkedFault(
            fp_by_name("TFU"), fp_by_name("CFds_0w1_v0"),
            Topology.LF2VA)
        assert lf.fp_roles(1) == (None, 1)
        assert lf.fp_roles(2) == (0, 1)

    def test_lf3_roles_use_distinct_aggressors(self):
        lf = LinkedFault(
            fp_by_name("CFds_0w1_v0"), fp_by_name("CFds_0w1_v1"),
            Topology.LF3)
        assert lf.role_labels == ("a1", "a2", "v")
        assert lf.fp_roles(1) == (0, 2)
        assert lf.fp_roles(2) == (1, 2)

    def test_fp_roles_rejects_bad_index(self):
        lf = LinkedFault(
            fp_by_name("TFU"), fp_by_name("WDF0"), Topology.LF1)
        with pytest.raises(ValueError):
            lf.fp_roles(3)


class TestNaming:
    def test_name_and_notation(self):
        lf = LinkedFault(
            fp_by_name("TFU"), fp_by_name("RDF0"), Topology.LF1)
        assert lf.name == "LF1:TFU->RDF0"
        assert lf.notation() == "<0w1/0/-> -> <0r0/1/1>"
        assert str(lf) == lf.name
