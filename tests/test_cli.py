"""Unit tests for the ``repro-march`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["lists"],
            ["known"],
            ["coverage", "March SL"],
            ["simulate", "c(w0) c(r0)"],
            ["generate", "--fault-list", "2"],
            ["campaign", "--fault-lists", "1", "2", "--workers", "4",
             "--sizes", "3", "4"],
            ["table1"],
            ["matrix"],
            ["figure", "--which", "pgcf"],
        ):
            assert parser.parse_args(argv).command == argv[0]


class TestCommands:
    def test_lists(self, capsys):
        assert main(["lists"]) == 0
        out = capsys.readouterr().out
        assert "876 faults" in out
        assert "24 faults" in out

    def test_known(self, capsys):
        assert main(["known"]) == 0
        out = capsys.readouterr().out
        assert "March ABL" in out
        assert "(reconstruction)" in out

    def test_coverage_complete(self, capsys):
        assert main(["coverage", "March ABL1", "--fault-list", "2"]) == 0
        assert "100.0 %" in capsys.readouterr().out

    def test_coverage_incomplete_returns_1(self, capsys):
        code = main(["coverage", "March C-", "--fault-list", "2",
                     "--verbose"])
        assert code == 1
        assert "escape:" in capsys.readouterr().out

    def test_simulate(self, capsys):
        code = main([
            "simulate", "c(w0) c(w0,r0,r0,w1) c(w1,r1,r1,w0)",
            "--fault-list", "2"])
        assert code == 0
        assert "(9n)" in capsys.readouterr().out

    def test_simulate_rejects_inconsistent_march(self):
        with pytest.raises(Exception):
            main(["simulate", "U(r1)", "--fault-list", "2"])

    def test_generate_small_list(self, capsys):
        code = main(["generate", "--fault-list", "lf1", "--verbose",
                     "--name", "cli-gen"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-gen" in out
        assert "100.0 %" in out

    def test_figure_g0(self, capsys):
        assert main(["figure", "--which", "g0"]) == 0
        assert "digraph G0" in capsys.readouterr().out

    def test_figure_pgcf(self, capsys):
        assert main(["figure", "--which", "pgcf"]) == 0
        assert "style=bold" in capsys.readouterr().out

    def test_unknown_fault_list(self):
        with pytest.raises(SystemExit):
            main(["coverage", "March SL", "--fault-list", "nope"])
