"""Unit tests for the ``repro-march`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["lists"],
            ["known"],
            ["coverage", "March SL"],
            ["simulate", "c(w0) c(r0)"],
            ["generate", "--fault-list", "2"],
            ["campaign", "--fault-lists", "1", "2", "--workers", "4",
             "--sizes", "3", "4"],
            ["table1"],
            ["matrix"],
            ["figure", "--which", "pgcf"],
        ):
            assert parser.parse_args(argv).command == argv[0]


class TestCommands:
    def test_lists(self, capsys):
        assert main(["lists"]) == 0
        out = capsys.readouterr().out
        assert "876 faults" in out
        assert "24 faults" in out

    def test_known(self, capsys):
        assert main(["known"]) == 0
        out = capsys.readouterr().out
        assert "March ABL" in out
        assert "(reconstruction)" in out

    def test_coverage_complete(self, capsys):
        assert main(["coverage", "March ABL1", "--fault-list", "2"]) == 0
        assert "100.0 %" in capsys.readouterr().out

    def test_coverage_incomplete_returns_1(self, capsys):
        code = main(["coverage", "March C-", "--fault-list", "2",
                     "--verbose"])
        assert code == 1
        assert "escape:" in capsys.readouterr().out

    def test_simulate(self, capsys):
        code = main([
            "simulate", "c(w0) c(w0,r0,r0,w1) c(w1,r1,r1,w0)",
            "--fault-list", "2"])
        assert code == 0
        assert "(9n)" in capsys.readouterr().out

    def test_simulate_rejects_inconsistent_march(self):
        with pytest.raises(Exception):
            main(["simulate", "U(r1)", "--fault-list", "2"])

    def test_generate_small_list(self, capsys):
        code = main(["generate", "--fault-list", "lf1", "--verbose",
                     "--name", "cli-gen"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-gen" in out
        assert "100.0 %" in out

    def test_figure_g0(self, capsys):
        assert main(["figure", "--which", "g0"]) == 0
        assert "digraph G0" in capsys.readouterr().out

    def test_figure_pgcf(self, capsys):
        assert main(["figure", "--which", "pgcf"]) == 0
        assert "style=bold" in capsys.readouterr().out

    def test_unknown_fault_list(self):
        with pytest.raises(SystemExit):
            main(["coverage", "March SL", "--fault-list", "nope"])

    def test_registry_backend_selectable_by_name(self, capsys):
        # Any registered backend name works on any command that takes
        # --backend, with byte-identical output to the default.
        assert main(["coverage", "March ABL1", "--fault-list", "2",
                     "--backend", "bitpar"]) == 0
        bitpar_out = capsys.readouterr().out
        assert main(["coverage", "March ABL1", "--fault-list", "2"]) == 0
        assert capsys.readouterr().out == bitpar_out


def _one_line_exit(argv):
    """Run *argv*, asserting a clean non-zero one-line SystemExit.

    The error-path contract: invalid specs exit via ``SystemExit``
    with a single-line message (argparse prints it and exits 1) --
    never a traceback escaping as some other exception type.
    """
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    message = str(excinfo.value)
    assert message, "error exit must carry a message"
    assert "\n" not in message.strip()
    assert excinfo.value.code != 0
    return message


class TestErrorPaths:
    """Invalid specs exit non-zero with a one-line error, no traceback."""

    @pytest.mark.parametrize("shard", ["abc", "1/x", "x/3", "1/3/9",
                                       "3"])
    def test_malformed_shard_specs(self, shard):
        message = _one_line_exit(
            ["campaign", "--fault-lists", "2", "--shard", shard])
        assert "shard" in message

    @pytest.mark.parametrize("shard", ["0/3", "4/3", "1/0", "-1/2"])
    def test_out_of_range_shard_specs(self, shard):
        # --shard=SPEC spelling: argparse would otherwise read a
        # leading-dash spec ("-1/2") as an option name.
        message = _one_line_exit(
            ["campaign", "--fault-lists", "2", f"--shard={shard}"])
        assert "shard" in message

    @pytest.mark.parametrize("command", [
        ["campaign", "--fault-lists", "2"],
        ["coverage", "March C-", "--fault-list", "2"],
        ["generate", "--fault-list", "lf1"],
    ])
    def test_unknown_backend_exits_with_known_list(self, command):
        # Validated against the live registry before any command (or
        # campaign worker fan-out) runs; the message names every
        # accepted selector.
        message = _one_line_exit(command + ["--backend", "gpu"])
        assert "backend" in message
        for name in ("auto", "sparse", "dense", "bitpar"):
            assert name in message

    def test_resume_without_store(self):
        message = _one_line_exit(
            ["campaign", "--fault-lists", "2", "--resume"])
        assert "--store" in message

    @pytest.mark.parametrize("command", [
        ["coverage", "March C-"],
        ["simulate", "c(w0) c(r0)"],
        ["campaign", "--fault-lists", "2"],
    ])
    def test_invalid_background_patterns(self, command):
        message = _one_line_exit(
            command + ["--fault-list", "2", "--backgrounds", "xx"]
            if command[0] != "campaign" else
            command + ["--backgrounds", "xx"])
        assert "background" in message

    def test_background_width_mismatch(self):
        message = _one_line_exit(
            ["coverage", "March C-", "--fault-list", "2",
             "--width", "4", "--backgrounds", "01"])
        assert "lanes" in message

    def test_unknown_background_set(self):
        message = _one_line_exit(
            ["campaign", "--fault-lists", "2",
             "--width", "4", "--backgrounds", "zebra"])
        assert "background" in message

    def test_store_commands_reject_non_database_files(self, tmp_path):
        bogus = tmp_path / "not-a-store.sqlite"
        bogus.write_text("definitely not sqlite\n" * 30)
        for argv in (
            ["store", "stats", str(bogus)],
            ["store", "gc", str(bogus)],
            ["store", "export", str(bogus)],
            ["store", "merge", str(tmp_path / "out.sqlite"),
             str(bogus)],
        ):
            message = _one_line_exit(argv)
            assert "not a qualification store" in message

    def test_campaign_rejects_non_database_store(self, tmp_path):
        bogus = tmp_path / "corrupt.sqlite"
        bogus.write_text("garbage")
        message = _one_line_exit(
            ["campaign", "--fault-lists", "2", "--store", str(bogus)])
        assert "not a qualification store" in message

    def test_generate_rejects_non_database_store(self, tmp_path):
        bogus = tmp_path / "corrupt.sqlite"
        bogus.write_text("garbage")
        message = _one_line_exit(
            ["generate", "--fault-list", "2", "--store", str(bogus)])
        assert "not a qualification store" in message

    def test_dictionary_rejects_non_database_store(self, tmp_path):
        bogus = tmp_path / "corrupt.sqlite"
        bogus.write_text("garbage")
        message = _one_line_exit(
            ["dictionary", "March C-", "--fault-list", "2",
             "--store", str(bogus)])
        assert "not a qualification store" in message

    def test_dictionary_rejects_bad_march(self):
        message = _one_line_exit(
            ["dictionary", "not a march (x)", "--fault-list", "2"])
        assert "neither a known march test" in message

    def test_diagnose_rejects_unknown_fault(self):
        message = _one_line_exit(
            ["diagnose", "March C-", "--fault-list", "2",
             "--inject", "LF1:NOPE"])
        assert "not in fault list" in message

    def test_diagnose_rejects_bad_placement(self):
        message = _one_line_exit(
            ["diagnose", "March C-", "--fault-list", "2",
             "--inject", "LF1:TFU->SF0", "--placement", "99"])
        assert "placement" in message

    def test_diagnose_rejects_malformed_signature(self):
        message = _one_line_exit(
            ["diagnose", "March C-", "--fault-list", "2",
             "--signature", "e1x2"])
        assert "invalid --signature" in message

    def test_dictionary_rejects_bad_word_mode(self):
        message = _one_line_exit(
            ["dictionary", "March C-", "--fault-list", "2",
             "--width", "0"])
        assert "invalid dictionary build" in message

    def test_diagnose_rejects_bad_max_suffix(self):
        message = _one_line_exit(
            ["diagnose", "March C-", "--fault-list", "2",
             "--inject", "LF1:TFU->SF0", "--distinguish",
             "--max-suffix", "0"])
        assert "invalid distinguish run" in message


class TestResilienceCli:
    """--chaos / --timeout flags and graceful interrupt handling."""

    def test_campaign_chaos_and_timeout_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["campaign", "--fault-lists", "2", "--workers", "2",
             "--chaos", "crash=0.3,seed=7", "--timeout", "5"])
        assert args.chaos == "crash=0.3,seed=7"
        assert args.timeout == 5.0

    def test_campaign_rejects_bad_chaos_spec(self):
        message = _one_line_exit(
            ["campaign", "--fault-lists", "2", "--chaos",
             "explode=1"])
        assert "invalid campaign" in message
        assert "bad chaos token" in message

    def test_campaign_rejects_bad_timeout(self):
        message = _one_line_exit(
            ["campaign", "--fault-lists", "2", "--timeout", "0"])
        assert "invalid campaign" in message

    def test_chaotic_campaign_report_is_byte_identical(
            self, tmp_path, capsys):
        clean = tmp_path / "clean.json"
        disturbed = tmp_path / "disturbed.json"
        base = ["campaign", "--tests", "March C-", "--fault-lists",
                "2", "--sizes", "3"]
        assert main(base + ["--report-json", str(clean)]) <= 1
        assert main(
            base + ["--workers", "2", "--report-json", str(disturbed),
                    "--chaos", "crash=0.3,poison=0.3,seed=7"]) <= 1
        out = capsys.readouterr().out
        assert "recovery event" in out
        assert clean.read_bytes() == disturbed.read_bytes()

    def test_chaotic_dictionary_build_is_byte_identical(
            self, tmp_path, capsys):
        clean = tmp_path / "clean.json"
        disturbed = tmp_path / "disturbed.json"
        base = ["dictionary", "March C-", "--fault-list", "2"]
        assert main(base + ["--json", str(clean)]) == 0
        assert main(
            base + ["--workers", "2", "--json", str(disturbed),
                    "--chaos", "poison=0.3,seed=5"]) == 0
        assert clean.read_bytes() == disturbed.read_bytes()

    def test_dictionary_rejects_bad_chaos_spec(self):
        message = _one_line_exit(
            ["dictionary", "March C-", "--fault-list", "2",
             "--chaos", "explode=1"])
        assert "invalid dictionary build" in message
        assert "bad chaos token" in message

    def test_sigint_drains_checkpoints_and_prints_resume(
            self, tmp_path):
        """A real SIGINT against a live campaign subprocess must exit
        130, leave the completed chunks in the store, and print the
        exact resume command."""
        import os
        import signal
        import subprocess
        import sys
        import time

        import repro
        from repro.store.store import QualificationStore

        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        store_path = tmp_path / "interrupted.sqlite"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "campaign",
             "--fault-lists", "1", "--sizes", "4", "--workers", "2",
             "--store", str(store_path)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        time.sleep(3.0)  # let a few chunks complete and checkpoint
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 130, out
        assert "interrupted" in out
        assert "--resume" in out
        assert str(store_path) in out
        # The drained checkpoints are durable and readable.
        store = QualificationStore(store_path)
        assert len(store) > 0
        store.close()


class TestSharedFlagParity:
    """The job-shaped subcommands inherit one shared parent parser.

    Pins the satellite: ``--backend/--store/--workers/--timeout/
    --chaos/--json`` are declared once (``repro.cli._shared_options``)
    and every subcommand that executes through the JobSpec/JobRunner
    pair -- including ``serve`` and any future one -- exposes the
    identical spelling.
    """

    SHARED = {"--backend", "--store", "--workers", "--timeout",
              "--chaos", "--json"}
    JOB_COMMANDS = ("campaign", "dictionary", "diagnose", "fleet",
                    "serve")

    @staticmethod
    def _subcommands():
        parser = build_parser()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                return action.choices
        raise AssertionError("no subparsers found")

    def test_every_job_subcommand_has_the_shared_flags(self):
        subcommands = self._subcommands()
        for command in self.JOB_COMMANDS:
            options = {
                option
                for action in subcommands[command]._actions
                for option in action.option_strings}
            missing = self.SHARED - options
            assert not missing, (command, sorted(missing))

    def test_shared_defaults_are_identical(self):
        subcommands = self._subcommands()
        defaults = None
        for command in self.JOB_COMMANDS:
            sub = subcommands[command]
            these = {
                action.option_strings[0]: action.default
                for action in sub._actions
                if action.option_strings
                and action.option_strings[0] in self.SHARED}
            if defaults is None:
                defaults = these
            else:
                assert these == defaults, command

    def test_serve_parses_with_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8765
        assert args.host == "127.0.0.1"
        assert args.job_workers == 2
        assert args.queue_size == 64
        assert args.backend == "auto"
        assert args.workers == 1
        assert args.store is None
