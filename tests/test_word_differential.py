"""Cross-backend differential matrix for the word-oriented workload.

Two load-bearing claims are pinned here:

* **backend identity** -- the lane-sparse word kernel reports exactly
  what the dense word walk reports (detections, escape witnesses with
  their backgrounds, ``contexts_simulated``, escape sites), across
  widths, geometries, layouts, background sets and randomized march
  tests;
* **width-1 equivalence** -- a 1-bit word memory under the single
  background ``(0,)`` is *bit-identical* to the existing bit-oriented
  model: same instances, same witnesses, same context accounting, and
  the paper's fault-list numbers (March C- / FL#2 = 18/24) are
  invariant under width-1 wordization.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from harness import (
    assert_backends_identical,
    random_marches,
    report_key,
    stratified,
)
from repro.faults.backgrounds import standard_backgrounds
from repro.faults.dynamic import dynamic_faults
from repro.faults.library import fp_by_name
from repro.faults.lists import (
    fault_list_1,
    fault_list_2,
    simple_single_cell_faults,
)
from repro.march.known import ALL_KNOWN, known_march
from repro.march.test import parse_march
from repro.memory.word import word_escape_sites
from repro.sim.coverage import make_instances, qualify_test

WIDTHS = (1, 4, 8)
SIZES = (3, 16)

# A pool mixing every fault family the simulator knows: linked
# (1/2/3-cell), state maskers, DRF and dynamic pairs.
FAULT_POOL = (
    stratified(fault_list_1(), 16)
    + [fp_by_name("DRF0"), fp_by_name("DRF1")]
    + stratified(dynamic_faults(), 8)
)


def strip_backgrounds(key):
    """A report key with escape backgrounds masked out.

    Used only by the width-1 equivalence tests, where the word path
    tags every escape with background ``(0,)`` while the bit path
    reports ``None`` -- everything else must match byte-for-byte.
    """
    *head, escapes = key
    return tuple(head) + (
        [(fault, instance, resolution)
         for fault, instance, resolution, _ in escapes],)


# ----------------------------------------------------------------------
# Acceptance matrix: paper fault lists x widths x sizes x layouts
# ----------------------------------------------------------------------
class TestWordBackendMatrix:
    @pytest.mark.parametrize("width", WIDTHS)
    @pytest.mark.parametrize("test_name", ["March C-", "March SL"])
    def test_fl2_full_matrix(self, test_name, width):
        test = ALL_KNOWN[test_name].test
        faults = fault_list_2()
        for size in SIZES:
            assert_backends_identical(
                test, faults, size, width=width)

    @pytest.mark.parametrize("layout", ("straddle", "all"))
    @pytest.mark.parametrize("width", (4, 8))
    def test_fl1_stratified_sample_matrix(self, width, layout):
        faults = stratified(fault_list_1(), 24)
        assert {f.cells for f in faults} == {1, 2, 3}
        test = ALL_KNOWN["March ABL"].test
        for size in SIZES:
            assert_backends_identical(
                test, faults, size, layout, width=width)

    @pytest.mark.parametrize("backgrounds",
                             ["standard", "marching", "solid"])
    def test_background_sets_identical_across_backends(
            self, backgrounds):
        test = known_march("March C-").test
        assert_backends_identical(
            test, fault_list_2(), 5, width=4, backgrounds=backgrounds)

    def test_wait_and_drf_paths(self):
        test = parse_march(
            "c(w0) U(t) c(r0) D(w1,t,r1,w0) c(r0,t)", name="waits")
        faults = [fp_by_name("DRF0"), fp_by_name("DRF1"),
                  fp_by_name("SF0"), fp_by_name("SF1")]
        for size in (3, 9, 33):
            assert_backends_identical(test, faults, size, width=4)

    def test_dynamic_cross_element_pairing(self):
        tests = [
            parse_march("c(w0) U(r0,w1) D(r1,w0) c(r0)", name="updown"),
            parse_march("c(w0) U(r0,r0) D(r0,w1,r1,r1) c(r1)",
                        name="rr"),
        ]
        faults = stratified(dynamic_faults(), 12)
        for test in tests:
            for size in (3, 7):
                assert_backends_identical(test, faults, size, width=4)

    def test_incomplete_word_witnesses_identical(self):
        # March C- leaves FL#2 escapes at width 4 too; the sparse
        # kernel must report the same witnesses AND backgrounds.
        test = ALL_KNOWN["March C-"].test
        dense = assert_backends_identical(
            test, fault_list_2(), 16, width=4)
        assert dense.escapes
        assert all(
            record.background is not None for record in dense.escapes)

    def test_word_escape_sites_identical(self):
        test = parse_march("c(w0) U(r0,w1) D(r1,w0) c(r0)")
        backgrounds = standard_backgrounds(4)
        for fault in stratified(fault_list_1(), 8):
            for instance in make_instances(fault, 9):
                dense = word_escape_sites(
                    test, instance, 9, 4, backgrounds,
                    backend="dense")
                sparse = word_escape_sites(
                    test, instance, 9, 4, backgrounds,
                    backend="sparse")
                assert dense == sparse


# ----------------------------------------------------------------------
# Hypothesis: randomized marches x widths x backgrounds
# ----------------------------------------------------------------------
class TestRandomizedWordDifferential:
    @given(
        march=random_marches(),
        width=st.sampled_from(WIDTHS),
        size=st.sampled_from((3, 5, 16)),
        lo=st.integers(min_value=0, max_value=len(FAULT_POOL) - 3),
    )
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_reports_identical(self, march, width, size, lo):
        faults = FAULT_POOL[lo:lo + 3]
        assert_backends_identical(march, faults, size, width=width)

    @given(
        march=random_marches(),
        backgrounds=st.sampled_from(("standard", "marching", "solid")),
        lo=st.integers(min_value=0, max_value=len(FAULT_POOL) - 3),
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_background_sets_identical(self, march, backgrounds, lo):
        faults = FAULT_POOL[lo:lo + 3]
        assert_backends_identical(
            march, faults, 5, width=4, backgrounds=backgrounds)


# ----------------------------------------------------------------------
# Width-1 wordization equivalence (regression pins)
# ----------------------------------------------------------------------
class TestWidthOneEquivalence:
    WORD_ONE = dict(width=1, backgrounds=((0,),))

    @pytest.mark.parametrize("backend", ("dense", "sparse"))
    @pytest.mark.parametrize("test_name",
                             ["March C-", "March SL", "MATS+"])
    def test_bit_identical_reports(self, test_name, backend):
        test = ALL_KNOWN[test_name].test
        faults = fault_list_2()
        for size in (3, 16):
            bit = qualify_test(
                test, faults, size, 6, "straddle", backend)
            word = qualify_test(
                test, faults, size, 6, "straddle", backend,
                **self.WORD_ONE)
            assert strip_backgrounds(report_key(bit)) == \
                strip_backgrounds(report_key(word))
            assert all(
                record.background == (0,) for record in word.escapes)

    def test_paper_pin_march_c_minus_fl2_18_of_24(self):
        """The paper-table regression: March C- detects 18 of the 24
        FL#2 targets, and width-1 wordization must not move it."""
        bit = qualify_test(known_march("March C-").test, fault_list_2())
        word = qualify_test(
            known_march("March C-").test, fault_list_2(),
            **self.WORD_ONE)
        for report in (bit, word):
            assert report.total == 24
            assert len(report.detected_names) == 18
            assert report.coverage == 0.75
            assert report.summary() == \
                "March C-: 18/24 faults (75.0 %)"

    def test_paper_pin_mats_plus_simple_statics(self):
        faults = simple_single_cell_faults()
        test = parse_march("c(w0) U(r0,w1) D(r1,w0)", name="MATS+")
        bit = qualify_test(test, faults)
        word = qualify_test(test, faults, **self.WORD_ONE)
        assert bit.total == word.total == 12
        assert bit.detected_names == word.detected_names
        assert [r.fault.name for r in bit.escapes] == \
            [r.fault.name for r in word.escapes]

    def test_fl1_slice_contexts_identical(self):
        """Context accounting (the throughput denominator) must be
        untouched by width-1 wordization, on both backends."""
        faults = list(fault_list_1()[::40])
        test = known_march("March SL").test
        for backend in ("dense", "sparse"):
            bit = qualify_test(
                test, faults, 5, 6, "straddle", backend)
            word = qualify_test(
                test, faults, 5, 6, "straddle", backend,
                **self.WORD_ONE)
            assert bit.contexts_simulated == word.contexts_simulated
            assert bit.coverage == word.coverage
