"""Unit tests for the analysis/reporting layer."""

import pytest

from repro.analysis.compare import (
    Table1Row,
    coverage_matrix,
    improvement,
    render_table1,
)
from repro.analysis.dot import (
    figure4_linked_fault,
    g0_dot,
    pgcf_example_graph,
)
from repro.analysis.table import TextTable
from repro.faults.lists import lf1_faults
from repro.march.known import MARCH_ABL1, MARCH_LF1, MATS_PLUS


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["a", "long header"])
        table.add_row(["x", "y"])
        lines = table.render().splitlines()
        assert lines[0].startswith("a")
        assert "long header" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 3

    def test_row_arity_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(["only one"])

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_cells_are_stringified(self):
        table = TextTable(["n"])
        table.add_row([42])
        assert "42" in table.render()


class TestImprovement:
    def test_paper_table1_arithmetic(self):
        """The exact percentages of Table 1."""
        assert improvement(37, 43) == pytest.approx(13.95, abs=0.05)
        assert improvement(37, 41) == pytest.approx(9.76, abs=0.06)
        assert improvement(35, 43) == pytest.approx(18.60, abs=0.05)
        assert improvement(35, 41) == pytest.approx(14.63, abs=0.05)
        assert improvement(9, 11) == pytest.approx(18.18, abs=0.08)

    def test_longer_tests_give_negative_improvement(self):
        assert improvement(50, 43) < 0

    def test_baseline_must_be_positive(self):
        with pytest.raises(ValueError):
            improvement(10, 0)


class TestRenderTable1:
    def test_render_contains_baseline_columns(self):
        row = Table1Row(
            name="Gen ABL1 (repro)",
            test=MARCH_ABL1.test,
            fault_list_label="#2",
            cpu_seconds=0.5,
            coverage_percent=100.0,
            improvements={
                "43n March Test": improvement(9, 43),
                "March SL": improvement(9, 41),
                "March LF1": improvement(9, 11),
            },
        )
        text = render_table1([row])
        assert "vs 43n [11]" in text
        assert "vs 41n SL" in text
        assert "vs 11n LF1" in text
        assert "18.2%" in text         # 9n vs 11n LF1
        assert "9n" in text
        # FL#1 columns are not applicable to an FL#2 row.
        assert "-" in text


class TestCoverageMatrix:
    def test_matrix_shape_and_values(self):
        table = coverage_matrix(
            [MARCH_ABL1.test, MATS_PLUS.test, MARCH_LF1.test],
            {"LF1": lf1_faults()},
        )
        text = table.render()
        assert "March ABL1" in text and "MATS+" in text
        assert "100.0" in text
        lines = text.splitlines()
        assert len(lines) == 2 + 3  # header + separator + 3 tests


class TestDotExports:
    def test_g0_dot_for_two_cells(self):
        dot = g0_dot(2)
        assert dot.startswith("digraph G0")
        assert '"00"' in dot and '"11"' in dot

    def test_figure4_fault_identity(self):
        fault = figure4_linked_fault()
        assert fault.fp1.name == "CFds_0w1_v0"
        assert fault.fp2.name == "CFds_1w0_v1"
        assert fault.notation() == "<0w1;0/1/-> -> <1w0;1/0/->"

    def test_pgcf_graph_dot(self):
        graph, instance = pgcf_example_graph()
        dot = graph.to_dot("PGCF")
        assert dot.count("style=bold") == 2
        assert "w[0]1,r[1]0" in dot
