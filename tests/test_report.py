"""Tests for the Markdown reproduction report."""

import pytest

from repro.analysis.report import (
    _md_table,
    anchor_section,
    build_report,
    matrix_section,
)
from repro.faults.lists import fault_list_1, fault_list_2
from repro.sim.coverage import CoverageOracle


@pytest.fixture(scope="module")
def oracles():
    return (CoverageOracle(fault_list_1()),
            CoverageOracle(fault_list_2()))


class TestMarkdownTable:
    def test_shape(self):
        text = _md_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4


class TestSections:
    def test_anchor_section_all_ok(self, oracles):
        text = anchor_section(*oracles)
        assert "FAILED" not in text
        assert text.count("| ok |") == 5

    def test_matrix_section_lists_every_known_test(self, oracles):
        text = matrix_section(*oracles)
        for name in ("March ABL", "March SL", "MATS+", "March LF1"):
            assert name in text


class TestBuildReport:
    def test_fast_report(self):
        text = build_report(include_generation=False)
        assert text.startswith("# Reproduction report")
        assert "Calibration anchors" in text
        assert "Skipped" in text          # Table 1 not regenerated
        assert "876 linked faults" in text

    def test_cli_report_command(self, capsys, tmp_path):
        from repro.cli import main
        out_file = tmp_path / "report.md"
        assert main(["report", "--output", str(out_file)]) == 0
        assert "Calibration anchors" in out_file.read_text()
