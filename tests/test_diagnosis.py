"""Unit tests for the fault-diagnosis subsystem.

Covers the tentpole acceptance criteria:

* every injected single-fault signature resolves to an ambiguity
  class containing the true fault, across FL#1/FL#2 and the
  {3, 64} x {1, 4} geometry grid;
* dictionaries are byte-identical between the dense and sparse
  backends;
* a warm-store dictionary rebuild performs zero simulations.
"""

import json

import pytest

from repro.analysis.diagnosis import (
    render_ambiguity_table,
    render_dictionary_summary,
)
from repro.cli import main
from repro.diagnosis import (
    DistinguishingGenerator,
    ambiguity_classes,
    ambiguity_report,
    build_dictionary,
    diagnose,
    parse_signature,
    signature_str,
)
from repro.faults.lists import fault_list_1, fault_list_2
from repro.march.known import known_march
from repro.march.test import parse_march
from repro.sim.coverage import signature_runs
from repro.store import QualificationStore, signature_key
from tests.harness import stratified

MARCH_C = known_march("March C-").test
MARCH_SL = known_march("March SL").test
FL2 = fault_list_2()


# ----------------------------------------------------------------------
# Signatures and the run grid
# ----------------------------------------------------------------------

class TestSignatureRuns:
    def test_bit_path_one_run_per_resolution(self):
        runs = signature_runs(MARCH_C)
        # March C- has two ⇕ elements -> four resolutions.
        assert len(runs) == 4
        assert all(background is None for background, _ in runs)
        assert len({resolution for _, resolution in runs}) == 4

    def test_word_mode_backgrounds_outermost(self):
        backgrounds = ((0, 0), (0, 1))
        runs = signature_runs(MARCH_C, backgrounds)
        assert len(runs) == 8
        assert [bg for bg, _ in runs[:4]] == [(0, 0)] * 4
        assert [bg for bg, _ in runs[4:]] == [(0, 1)] * 4

    def test_no_any_elements_single_run(self):
        test = parse_march("U(w0) U(r0)")
        assert signature_runs(test) == [(None, ())]


class TestSignatureEncoding:
    def test_round_trip(self):
        signature = ((1, 0, 2), None, (3, 1, 0))
        text = signature_str(signature)
        assert text == "e1o0c2;-;e3o1c0"
        assert parse_signature(text) == signature

    def test_whitespace_tolerated(self):
        assert parse_signature(" e1o0c2 ; - ") == ((1, 0, 2), None)

    @pytest.mark.parametrize("bad", ["", "x", "e1o0", "e1c2", "eoc",
                                     "e1o0c2;;e1o0c2"])
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_signature(bad)


# ----------------------------------------------------------------------
# Dictionary construction
# ----------------------------------------------------------------------

class TestDictionary:
    def test_entry_grid_is_complete(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        # 24 single-cell faults x 2 boundary placements.
        assert len(dictionary) == 48
        coordinates = {
            (e.fault_index, e.instance_index) for e in dictionary}
        assert len(coordinates) == 48
        assert all(
            len(e.signature) == len(dictionary.runs) for e in dictionary)

    def test_detected_flag_matches_sites(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        for entry in dictionary:
            assert entry.detected == any(
                site is not None for site in entry.signature)

    def test_complete_test_observes_everything(self):
        dictionary = build_dictionary(MARCH_SL, FL2)
        # March SL covers FL#2 fully: no placement escapes every run
        # under *some* background -- on the bit path every placement
        # must be observed in at least one run.
        assert all(entry.detected for entry in dictionary)

    def test_workers_fanout_is_deterministic(self):
        serial = build_dictionary(MARCH_C, FL2, workers=1)
        parallel = build_dictionary(MARCH_C, FL2, workers=3)
        assert serial.to_json() == parallel.to_json()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            build_dictionary(MARCH_C, FL2, backend="quantum")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            build_dictionary(MARCH_C, FL2, workers=0)

    def test_width1_word_path_matches_bit_path(self):
        bit = build_dictionary(MARCH_C, FL2)
        word = build_dictionary(
            MARCH_C, FL2, width=1, backgrounds=((0,),))
        assert [e.signature for e in bit.entries] \
            == [e.signature for e in word.entries]


class TestBackendIdentity:
    @pytest.mark.parametrize("size", [3, 64])
    @pytest.mark.parametrize("width", [1, 4])
    def test_dense_sparse_byte_identity_fl2(self, size, width):
        kwargs = {"memory_size": size, "width": width}
        if width > 1:
            kwargs["backgrounds"] = "standard"
        dense = build_dictionary(
            MARCH_C, FL2, backend="dense", **kwargs)
        sparse = build_dictionary(
            MARCH_C, FL2, backend="sparse", **kwargs)
        assert dense.to_json() == sparse.to_json()

    def test_dense_sparse_byte_identity_fl1_slice(self):
        faults = stratified(fault_list_1(), 40)
        dense = build_dictionary(
            MARCH_SL, faults, memory_size=64, backend="dense")
        sparse = build_dictionary(
            MARCH_SL, faults, memory_size=64, backend="sparse")
        assert dense.to_json() == sparse.to_json()


# ----------------------------------------------------------------------
# Diagnosis: injected signature -> class containing the true fault
# ----------------------------------------------------------------------

def assert_self_diagnosis(dictionary):
    for entry in dictionary:
        cls = diagnose(dictionary, entry.signature)
        assert cls is not None
        assert entry.fault.name in cls.fault_names
        assert any(e is entry for e in cls.entries)


class TestDiagnose:
    @pytest.mark.parametrize("size", [3, 64])
    @pytest.mark.parametrize("width", [1, 4])
    def test_every_injected_fault_resolves_fl2(self, size, width):
        kwargs = {"memory_size": size, "width": width}
        if width > 1:
            kwargs["backgrounds"] = "standard"
        assert_self_diagnosis(build_dictionary(MARCH_C, FL2, **kwargs))

    def test_every_injected_fault_resolves_fl1(self):
        assert_self_diagnosis(
            build_dictionary(MARCH_SL, fault_list_1()))

    @pytest.mark.parametrize("size", [3, 64])
    @pytest.mark.parametrize("width", [1, 4])
    def test_every_injected_fault_resolves_fl1_slice(self, size, width):
        faults = stratified(fault_list_1(), 30)
        kwargs = {"memory_size": size, "width": width}
        if width > 1:
            kwargs["backgrounds"] = "standard"
        assert_self_diagnosis(
            build_dictionary(MARCH_SL, faults, **kwargs))

    def test_unknown_signature_returns_none(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        assert diagnose(dictionary, ((9, 9, 9),) * 4) is None


# ----------------------------------------------------------------------
# Ambiguity partition and scoring
# ----------------------------------------------------------------------

class TestAmbiguity:
    def test_classes_form_a_partition(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        classes = ambiguity_classes(dictionary)
        seen = set()
        for cls in classes:
            for entry in cls.entries:
                key = (entry.fault_index, entry.instance_index)
                assert key not in seen
                seen.add(key)
                assert entry.signature == cls.signature
        assert len(seen) == len(dictionary)

    def test_pair_accounting(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        report = ambiguity_report(dictionary)
        n = report.total_entries
        assert report.total_pairs == n * (n - 1) // 2
        assert report.distinguishable_pairs \
            + report.indistinguishable_pairs == report.total_pairs
        assert 0.0 <= report.resolution <= 1.0

    def test_perfect_resolution_when_all_unique(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        report = ambiguity_report(dictionary)
        if report.max_class_size == 1:  # pragma: no cover
            assert report.resolution == 1.0
        # March C- is known-ambiguous on FL#2.
        assert report.max_class_size > 1
        assert report.resolution < 1.0

    def test_undetected_entries_are_the_all_escape_class(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        report = ambiguity_report(dictionary)
        blind = [cls for cls in report.classes if not cls.detected]
        assert len(blind) == 1
        assert report.undetected_entries == blind[0].size
        assert set(blind[0].signature) == {None}

    def test_distinguished_faults_have_pure_classes(self):
        dictionary = build_dictionary(MARCH_SL, FL2)
        report = ambiguity_report(dictionary)
        distinguished = set(report.distinguished_faults)
        for cls in report.classes:
            if not cls.pure:
                assert distinguished.isdisjoint(cls.fault_names)

    def test_report_json_is_deterministic(self):
        a = ambiguity_report(build_dictionary(MARCH_C, FL2)).to_json()
        b = ambiguity_report(build_dictionary(MARCH_C, FL2)).to_json()
        assert a == b

    def test_render_table(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        report = ambiguity_report(dictionary)
        text = report.render(limit=3)
        assert "Placements" in text and "Signature" in text
        assert len(text.splitlines()) == 5  # header + rule + 3 rows
        assert "ambiguity class" in render_dictionary_summary(
            dictionary, report)
        assert render_ambiguity_table(report).count("\n") >= 2


# ----------------------------------------------------------------------
# Store persistence
# ----------------------------------------------------------------------

class TestDictionaryStore:
    def test_warm_rebuild_zero_simulations(self):
        store = QualificationStore()
        cold = build_dictionary(MARCH_C, FL2, store=store)
        warm = build_dictionary(MARCH_C, FL2, store=store)
        assert cold.simulated_runs > 0
        assert cold.store_misses == len(FL2)
        assert warm.simulated_runs == 0
        assert warm.store_hits == len(FL2)
        assert warm.store_misses == 0
        assert cold.to_json() == warm.to_json()

    def test_rows_shared_across_fault_lists(self):
        # A list containing a subset of another list's faults reuses
        # the per-fault rows: content addressing is per fault, not per
        # list.
        store = QualificationStore()
        build_dictionary(MARCH_C, FL2, store=store)
        subset = build_dictionary(MARCH_C, FL2[:5], store=store)
        assert subset.store_hits == 5
        assert subset.simulated_runs == 0

    def test_rows_shared_across_backends(self):
        store = QualificationStore()
        build_dictionary(MARCH_C, FL2, store=store, backend="dense")
        warm = build_dictionary(
            MARCH_C, FL2, store=store, backend="sparse")
        assert warm.simulated_runs == 0

    def test_keys_separate_from_qualification_rows(self):
        from repro.store import qualification_key

        signature = signature_key(
            MARCH_C, FL2[0], 3, 6, "straddle", 1, None)
        qualification = qualification_key(
            MARCH_C, [FL2[0]], 3, 6, "straddle", 1, None)
        assert signature != qualification

    def test_keys_separate_per_geometry(self):
        base = signature_key(MARCH_C, FL2[0], 3, 6, "straddle", 1, None)
        assert signature_key(
            MARCH_C, FL2[0], 4, 6, "straddle", 1, None) != base
        assert signature_key(
            MARCH_C, FL2[0], 3, 6, "all", 1, None) != base
        assert signature_key(
            MARCH_C, FL2[0], 3, 6, "straddle", 2,
            ((0, 0), (0, 1))) != base
        assert signature_key(
            MARCH_C, FL2[1], 3, 6, "straddle", 1, None) != base

    def test_notation_spelling_collides_by_design(self):
        respelled = parse_march(
            "c(w0) u (r0 , w1) U(r1,w0) d(r0,w1) D(r1,w0) c(r0)",
            name="another name")
        assert signature_key(
            respelled, FL2[0], 3, 6, "straddle", 1, None) \
            == signature_key(MARCH_C, FL2[0], 3, 6, "straddle", 1, None)

    def test_file_store_round_trip(self, tmp_path):
        path = str(tmp_path / "dict.sqlite")
        cold = build_dictionary(MARCH_C, FL2, store=path)
        warm = build_dictionary(MARCH_C, FL2, store=path)
        assert warm.simulated_runs == 0
        assert cold.to_json() == warm.to_json()


# ----------------------------------------------------------------------
# Distinguishing marches
# ----------------------------------------------------------------------

class TestDistinguish:
    def test_march_c_fl2_splits_largest_class(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        result = DistinguishingGenerator(dictionary).distinguish()
        assert result.suffix  # found a split
        assert result.after.max_class_size \
            < result.before.max_class_size
        assert result.after.resolution > result.before.resolution
        assert result.test.is_consistent()
        # The suffix extends, never rewrites, the base march.
        base_len = len(MARCH_C.elements)
        assert result.test.elements[:base_len] == MARCH_C.elements

    def test_partition_only_refines(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        result = DistinguishingGenerator(dictionary).distinguish()
        before_by_coord = {}
        for index, cls in enumerate(result.before.classes):
            for entry in cls.entries:
                before_by_coord[
                    (entry.fault_index, entry.instance_index)] = index
        # Two placements in different before-classes never share an
        # after-class: extensions refine, never merge.
        for cls in result.after.classes:
            origins = {
                before_by_coord[(e.fault_index, e.instance_index)]
                for e in cls.entries}
            assert len(origins) == 1

    def test_retry_on_refined_dictionary_terminates(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        result = DistinguishingGenerator(dictionary).distinguish()
        refined = build_dictionary(result.test, FL2)
        again = DistinguishingGenerator(
            refined, max_suffix=2).distinguish()
        # The retry terminates and never regresses; with no committed
        # suffix the input dictionary is returned as-is (no rebuild).
        assert again.after.resolution >= again.before.resolution
        if not again.suffix:
            assert again.dictionary is refined
            assert again.after is again.before

    def test_focus_class_is_split_first(self):
        # The CLI's promise: with focus= the suffix budget serves the
        # diagnosed class before the rest of the partition.  A
        # 1-element budget must go to the (small) focused class even
        # though a larger class exists.
        dictionary = build_dictionary(MARCH_C, FL2)
        report = ambiguity_report(dictionary)
        splittable_small = None
        probe = DistinguishingGenerator(dictionary, max_suffix=8)
        full = probe.distinguish()
        split_origin = set()
        for cls in full.after.classes:
            origin = dictionary.signature_of(
                cls.entries[0].fault_index,
                cls.entries[0].instance_index)
            split_origin.add(origin)
        for cls in sorted(report.classes, key=lambda c: c.size):
            if cls.size <= 1 or cls.size == report.max_class_size:
                continue
            members = {(e.fault_index, e.instance_index)
                       for e in cls.entries}
            after_groups = len({
                full.dictionary.signature_of(f, i)
                for f, i in members})
            if after_groups > 1:
                splittable_small = cls
                break
        if splittable_small is None:
            pytest.skip("no small splittable class on this grid")
        focused = DistinguishingGenerator(
            dictionary, max_suffix=1, prune=False,
            focus=splittable_small).distinguish()
        groups = len({
            focused.dictionary.signature_of(f, i)
            for f, i in {
                (e.fault_index, e.instance_index)
                for e in splittable_small.entries}})
        assert groups > 1

    def test_tied_largest_classes_do_not_stall(self):
        # Three two-cell faults yielding several tied size-2 classes:
        # an unsplittable tie must not shadow splittable classes (the
        # suffix keeps splitting what it can), and a committed suffix
        # always strictly improves resolution.
        faults = [FL2[3], FL2[4], FL2[6]]
        dictionary = build_dictionary(MARCH_C, faults)
        result = DistinguishingGenerator(
            dictionary, max_suffix=3).distinguish()
        if result.suffix:
            assert result.after.resolution > result.before.resolution
            assert result.after.max_class_size \
                <= result.before.max_class_size

    def test_suffix_orders_are_concrete(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        result = DistinguishingGenerator(dictionary).distinguish()
        from repro.march.element import AddressOrder

        for element in result.suffix:
            assert element.order is not AddressOrder.ANY

    def test_word_mode_distinguish(self):
        dictionary = build_dictionary(
            MARCH_C, FL2, memory_size=8, width=4,
            backgrounds="standard")
        result = DistinguishingGenerator(dictionary).distinguish()
        assert result.after.max_class_size \
            <= result.before.max_class_size
        if result.suffix:
            assert result.after.resolution > result.before.resolution

    def test_backend_identity(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        dense = DistinguishingGenerator(
            build_dictionary(MARCH_C, FL2, backend="dense"),
            backend="dense").distinguish()
        sparse = DistinguishingGenerator(
            build_dictionary(MARCH_C, FL2, backend="sparse"),
            backend="sparse").distinguish()
        assert dense.test.notation() == sparse.test.notation()
        assert dense.dictionary.to_json() == sparse.dictionary.to_json()
        assert dictionary.to_json() == build_dictionary(
            MARCH_C, FL2).to_json()

    def test_bad_max_suffix_rejected(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        with pytest.raises(ValueError, match="max_suffix"):
            DistinguishingGenerator(dictionary, max_suffix=0)

    @pytest.mark.parametrize("bound", [1, 2])
    def test_max_suffix_is_a_hard_bound(self, bound):
        # The two-element lookahead must not overshoot the bound:
        # with one slot left only single elements are eligible.
        dictionary = build_dictionary(MARCH_C, FL2)
        result = DistinguishingGenerator(
            dictionary, max_suffix=bound, prune=False).distinguish()
        assert len(result.suffix) <= bound

    def test_trace_steps_report_deltas(self):
        dictionary = build_dictionary(MARCH_C, FL2)
        result = DistinguishingGenerator(dictionary).distinguish()
        for step in result.trace:
            assert step.elements  # the full committed chain
            assert step.detected_runs >= 0
        # The per-step deltas sum to the total runs the suffix fixed,
        # which cannot exceed the runs that escaped the base march.
        escaped = sum(
            sum(1 for site in entry.signature if site is None)
            for entry in dictionary)
        assert sum(s.detected_runs for s in result.trace) <= escaped


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------

class TestDiagnosisCli:
    def test_dictionary_smoke(self, capsys):
        assert main(["dictionary", "March C-",
                     "--fault-list", "2", "--ambiguity"]) == 0
        out = capsys.readouterr().out
        assert "distinct signatures" in out
        assert "resolution" in out

    def test_dictionary_json(self, capsys, tmp_path):
        path = tmp_path / "dict.json"
        ambiguity = tmp_path / "amb.json"
        assert main(["dictionary", "March C-", "--fault-list", "2",
                     "--json", str(path),
                     "--ambiguity-json", str(ambiguity)]) == 0
        payload = json.loads(path.read_text())
        assert payload["test"] == "March C-"
        assert len(payload["entries"]) == 48
        assert json.loads(ambiguity.read_text())["entries"] == 48

    def test_dictionary_warm_store_zero_simulations(
            self, capsys, tmp_path):
        store = str(tmp_path / "diag.sqlite")
        assert main(["dictionary", "March C-", "--fault-list", "2",
                     "--store", store]) == 0
        capsys.readouterr()
        assert main(["dictionary", "March C-", "--fault-list", "2",
                     "--store", store]) == 0
        assert "simulated runs: 0" in capsys.readouterr().out

    def test_diagnose_inject_round_trip(self, capsys):
        assert main(["diagnose", "March C-", "--fault-list", "2",
                     "--inject", "LF1:TFU->SF0"]) == 0
        out = capsys.readouterr().out
        assert "LF1:TFU->SF0" in out
        assert "ambiguity class" in out

    def test_diagnose_distinguish_splits_observed_class(self, capsys):
        # LF1:TFU->DRDF0 sits in the all-escape class of 12, which
        # the suffix splits into 6 groups -- the success path.
        assert main(["diagnose", "March C-", "--fault-list", "2",
                     "--inject", "LF1:TFU->DRDF0",
                     "--distinguish"]) == 0
        out = capsys.readouterr().out
        assert "distinguishing march" in out
        assert "observed class of 12 -> 6" in out

    def test_diagnose_distinguish_reports_unsplittable_class(
            self, capsys):
        # LF1:TFU->SF0's class of 6 resists every candidate suffix:
        # the CLI must say so instead of advertising a march that
        # only refines *other* classes.
        assert main(["diagnose", "March C-", "--fault-list", "2",
                     "--inject", "LF1:TFU->SF0",
                     "--distinguish"]) == 0
        assert "could not split the observed class" \
            in capsys.readouterr().out

    def test_diagnose_explicit_signature(self, capsys):
        assert main(["diagnose", "March C-", "--fault-list", "2",
                     "--signature", "e1o0c0;e1o0c0;e1o0c0;e1o0c0"]) == 0
        assert "ambiguity class" in capsys.readouterr().out

    def test_diagnose_unknown_signature_exits_1(self, capsys):
        assert main(["diagnose", "March C-", "--fault-list", "2",
                     "--signature", "e9o9c9;-;-;-"]) == 1
        assert "matches no modelled fault" in capsys.readouterr().out

    def test_diagnose_word_mode(self, capsys):
        assert main(["diagnose", "March C-", "--fault-list", "2",
                     "--size", "8", "--width", "4",
                     "--inject", "LF1:TFU->SF0"]) == 0
        assert "ambiguity class" in capsys.readouterr().out
