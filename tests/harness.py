"""Shared differential-test harness.

Every suite that claims two execution paths are *identical* -- sparse
kernel vs dense oracle, parallel campaign vs serial campaign, word
memory vs bit memory, dual-port coverage across geometries -- goes
through the helpers here instead of hand-rolling its own comparison.
One definition of "identical" (every observable report field,
witness identity included) keeps the suites honest with each other and
makes qualifying the next backend a one-liner.
"""

import hypothesis.strategies as st

from repro.faults.operations import read, wait, write
from repro.march.element import AddressOrder, MarchElement
from repro.march.test import MarchTest
from repro.sim.backends import backend_names
from repro.sim.coverage import qualify_test


def alternative_backends():
    """Every registered backend to pin against the dense oracle.

    Derived from the live registry, not a hard-coded list: registering
    a new simulation kernel automatically enrolls it in every
    differential suite built on :func:`assert_backends_identical`.
    """
    return tuple(
        name for name in backend_names()
        if name not in ("auto", "dense"))


def report_key(report):
    """Every observable field of a coverage report, as a plain tuple.

    Witness *identity* is part of the contract: an alternative backend
    must report the same escaping instance, resolution and (in word
    mode) data background, not merely the same coverage ratio.
    """
    return (
        report.test_name,
        report.total,
        report.coverage,
        report.contexts_simulated,
        list(report.detected_names),
        [fault.name for fault in report.detected],
        [
            (record.fault.name, record.instance.name,
             record.resolution, record.background)
            for record in report.escapes
        ],
    )


def assert_backends_identical(
    test, faults, size=3, layout="straddle",
    width=1, backgrounds=None, exhaustive_limit=6, backends=None,
):
    """Pin every registered backend byte-for-byte against the dense
    oracle.

    Works on both memory models: the bit path (default) and the
    word-oriented path (``width > 1`` or explicit *backgrounds*).
    *backends* defaults to :func:`alternative_backends` -- the live
    registry minus ``auto``/``dense``.  Returns the dense report so
    callers can make further assertions.
    """
    if backends is None:
        backends = alternative_backends()
    dense = qualify_test(
        test, faults, size, exhaustive_limit, layout, "dense",
        width, backgrounds)
    expected = report_key(dense)
    for backend in backends:
        candidate = qualify_test(
            test, faults, size, exhaustive_limit, layout, backend,
            width, backgrounds)
        assert report_key(candidate) == expected, \
            f"backend {backend!r} diverged from dense"
    return dense


def entry_dicts(result):
    """A campaign result's timing-free JSON form, entry by entry."""
    return [entry.to_dict() for entry in result.entries]


def assert_campaigns_identical(result_a, result_b):
    """Pin two campaign runs (e.g. serial vs parallel) entry-for-entry."""
    assert entry_dicts(result_a) == entry_dicts(result_b)


def stratified(faults, count):
    """An evenly spaced sample preserving fault-list order."""
    if len(faults) <= count:
        return list(faults)
    step = len(faults) // count
    return list(faults[::step][:count])


def dual_port_outcome_key(detected, escaped):
    """Order-free form of a ``dual_port_coverage`` outcome pair."""
    return (
        sorted(fp.name for fp in detected),
        sorted(fp.name for fp in escaped),
    )


_bits = st.integers(min_value=0, max_value=1)


@st.composite
def random_marches(draw):
    """Arbitrary march tests: waits, expectation-free and even
    *inconsistent* reads included -- differential suites must agree on
    any test, not only on fault-free-consistent ones."""
    elements = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        ops = []
        for _ in range(draw(st.integers(min_value=1, max_value=5))):
            choice = draw(st.integers(min_value=0, max_value=3))
            if choice == 0:
                ops.append(write(draw(_bits)))
            elif choice == 1:
                ops.append(read(draw(_bits)))
            elif choice == 2:
                ops.append(read(None))
            else:
                ops.append(wait())
        elements.append(MarchElement(
            draw(st.sampled_from(list(AddressOrder))), tuple(ops)))
    return MarchTest("random march", tuple(elements))


# ---------------------------------------------------------------------------
# Supervisor toy workers (module-level so worker processes can import
# them by qualified name; cross-attempt state lives in marker files
# because retries may land in different processes)
# ---------------------------------------------------------------------------

def toy_square(x):
    return x * x


def toy_sleep(x, seconds):
    import time
    time.sleep(seconds)
    return x


def toy_crash_until(x, marker_path, crashes):
    """``os._exit`` the worker until *crashes* attempts have died."""
    import os
    with open(marker_path, "a") as handle:
        handle.write("x")
    if os.path.getsize(marker_path) <= crashes:
        os._exit(1)
    return x


def toy_fail_until(x, marker_path, failures):
    """Raise until *failures* attempts have failed, then succeed."""
    import os
    with open(marker_path, "a") as handle:
        handle.write("x")
    if os.path.getsize(marker_path) <= failures:
        raise RuntimeError(f"transient failure #{x}")
    return x


def toy_hang_until(x, marker_path, hangs, seconds):
    """Sleep *seconds* until *hangs* attempts have hung."""
    import os
    import time
    with open(marker_path, "a") as handle:
        handle.write("x")
    if os.path.getsize(marker_path) <= hangs:
        time.sleep(seconds)
    return x


def toy_require_flag(x, ok):
    """Deterministic failure unless called with the fallback flag."""
    if not ok:
        raise RuntimeError("needs fallback arguments")
    return x
