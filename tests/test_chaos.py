"""Chaos harness (``repro.sim.chaos``) and the recovery invariant.

The tentpole guarantee of the supervised execution layer: **under any
chaos spec, a campaign's deterministic report is byte-identical to
the undisturbed serial oracle.**  The matrix below injects every
failure kind (worker crash, hang past the timeout, slow chunk, poison
exception) into serial and parallel runs on every backend, plus store
lock contention and a simulated mid-campaign kill that must resume at
chunk granularity with zero re-simulation of completed chunks.
"""

import json

import pytest

from harness import stratified
from repro.diagnosis.dictionary import build_dictionary
from repro.faults.lists import fault_list_2
from repro.march.known import known_march
from repro.sim.campaign import CoverageCampaign
from repro.sim.chaos import (
    ChaosPoison,
    ChaosSpec,
    apply_chaos,
    parse_chaos,
)
from repro.sim.supervisor import SupervisorPolicy
from repro.store import QualificationStore

TEST = known_march("March C-").test
#: A stratified slice of FL#2 keeps each matrix cell around a second
#: while still spreading faults across several chunks.
FAULTS = stratified(fault_list_2(), 12)
#: 12 faults / chunk_size 3 = 4 chunks per run -- enough parallelism
#: for crashes to catch innocent chunks in flight.
CHUNK = 3

#: No backoff sleeps: chaos tests retry a lot, determinism does not
#: depend on the delays.
FAST = SupervisorPolicy(backoff_base=0.0)
#: Hang cells need a real timeout to recover; generous enough for a
#: loaded 1-CPU CI runner, small enough to keep the cell fast.
HANG = SupervisorPolicy(timeout=1.5, backoff_base=0.0)


def run_campaign(**kwargs):
    return CoverageCampaign(
        TEST, {"FL2": FAULTS}, memory_sizes=[3], **kwargs).run()


@pytest.fixture(scope="module")
def oracle_json():
    """The undisturbed serial oracle every disturbed run must match."""
    return run_campaign().report_json()


# ----------------------------------------------------------------------
# Spec parsing and planning
# ----------------------------------------------------------------------
class TestChaosSpec:
    def test_parse_full_spec(self):
        spec = parse_chaos(
            "crash=0.3, poison=0.2, seed=7, attempts=2, "
            "slow_seconds=0.5")
        assert spec == ChaosSpec(
            seed=7, crash=0.3, poison=0.2, attempts=2,
            slow_seconds=0.5)

    def test_parse_empty_tokens_tolerated(self):
        assert parse_chaos("crash=1,,") == ChaosSpec(crash=1.0)

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="bad chaos token"):
            parse_chaos("explode=0.5")

    def test_parse_rejects_bad_value(self):
        with pytest.raises(ValueError, match="bad chaos value"):
            parse_chaos("crash=often")

    def test_parse_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError, match="bad chaos spec"):
            parse_chaos("crash=1.5")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="rate"):
            ChaosSpec(poison=-0.1)
        with pytest.raises(ValueError, match="attempts"):
            ChaosSpec(attempts=0)
        with pytest.raises(ValueError, match="durations"):
            ChaosSpec(slow_seconds=-1)

    def test_plan_is_deterministic(self):
        spec = ChaosSpec(seed=3, crash=0.3, poison=0.3)
        plans = [spec.plan(f"chunk {i}", 0) for i in range(50)]
        assert plans == [spec.plan(f"chunk {i}", 0) for i in range(50)]
        # With combined rate 0.6 over 50 labels, both actions and
        # clean chunks must all occur.
        assert {"crash", "poison", None} <= set(plans) | {None}
        assert any(plan == "crash" for plan in plans)
        assert any(plan == "poison" for plan in plans)
        assert any(plan is None for plan in plans)

    def test_plan_rate_one_always_fires(self):
        assert ChaosSpec(crash=1.0).plan("anything", 0) == "crash"
        assert ChaosSpec(hang=1.0).plan("anything", 0) == "hang"

    def test_plan_spares_later_attempts(self):
        spec = ChaosSpec(crash=1.0, attempts=1)
        assert spec.plan("chunk", 0) == "crash"
        assert spec.plan("chunk", 1) is None

    def test_plan_attempts_extends_disturbance(self):
        spec = ChaosSpec(crash=1.0, attempts=2)
        assert spec.plan("chunk", 1) == "crash"
        assert spec.plan("chunk", 2) is None

    def test_seed_changes_the_plan(self):
        labels = [f"chunk {i}" for i in range(40)]
        a = [ChaosSpec(seed=0, crash=0.5).plan(lb, 0) for lb in labels]
        b = [ChaosSpec(seed=1, crash=0.5).plan(lb, 0) for lb in labels]
        assert a != b

    def test_apply_slow_and_poison(self):
        apply_chaos(None, 0.0, 0.0)  # no-op
        apply_chaos("slow", 0.0, 0.0)  # zero-duration sleep
        with pytest.raises(ChaosPoison):
            apply_chaos("poison", 0.0, 0.0)
        with pytest.raises(ValueError, match="unknown chaos action"):
            apply_chaos("meltdown", 0.0, 0.0)

    def test_lock_plan_none_at_zero_rate(self):
        assert ChaosSpec().lock_plan() is None

    def test_lock_plan_first_attempt_only(self):
        fire = ChaosSpec(lock=1.0).lock_plan()
        # Every operation's first attempt is disturbed, its retry
        # (the call right after a firing call) always passes.
        assert [fire() for _ in range(6)] \
            == [True, False, True, False, True, False]

    def test_lock_plan_deterministic(self):
        draws = [ChaosSpec(lock=0.5, seed=9).lock_plan()()
                 for _ in range(1)]
        fire_a = ChaosSpec(lock=0.5, seed=9).lock_plan()
        fire_b = ChaosSpec(lock=0.5, seed=9).lock_plan()
        sequence_a = [fire_a() for _ in range(20)]
        sequence_b = [fire_b() for _ in range(20)]
        assert sequence_a == sequence_b
        assert draws[0] == sequence_a[0]


# ----------------------------------------------------------------------
# The chaos matrix: every failure kind x serial/parallel x backend
# must recover to the oracle's exact bytes
# ----------------------------------------------------------------------
#: kind -> (spec, policy, recovery event it must have produced):
#: a crash is seen as a dead worker, a hang as a chunk timeout, a
#: poison pill as a worker exception; slow chunks succeed on their
#: own (no recovery event -- byte-identity is the whole assertion).
MATRIX_SPECS = {
    "crash": (ChaosSpec(seed=7, crash=0.35), FAST, "crash"),
    "hang": (ChaosSpec(seed=7, hang=0.35, hang_seconds=30.0), HANG,
             "timeout"),
    "slow": (ChaosSpec(seed=7, slow=0.35, slow_seconds=0.05), FAST,
             None),
    "poison": (ChaosSpec(seed=7, poison=0.35), FAST, "error"),
}


class TestChaosMatrix:
    @pytest.mark.parametrize("kind", sorted(MATRIX_SPECS))
    @pytest.mark.parametrize("workers", [1, 2],
                             ids=["serial", "parallel"])
    @pytest.mark.parametrize(
        "backend", ["dense", "sparse", "bitpar"])
    def test_recovered_report_matches_oracle(
            self, oracle_json, kind, workers, backend):
        chaos, policy, event_kind = MATRIX_SPECS[kind]
        result = run_campaign(
            workers=workers, chunk_size=CHUNK, backend=backend,
            chaos=chaos, policy=policy)
        assert result.report_json() == oracle_json
        report = result.failure_report
        assert report is not None
        # Seeded rate 0.35 over 4 chunks: this fixed seed disturbs at
        # least one chunk in every cell, so recovery actually ran
        # (slow chunks recover by simply finishing -- no event).
        if event_kind is not None:
            assert report.count(event_kind) >= 1, report.to_dict()

    def test_chaos_forces_supervision_even_serially(self, oracle_json):
        result = run_campaign(
            workers=1, chunk_size=CHUNK,
            chaos=ChaosSpec(seed=7, crash=0.35), policy=FAST)
        assert result.failure_report is not None
        assert result.report_json() == oracle_json

    def test_crash_poison_storm_recovers(self, oracle_json):
        # Regression: a poisoned chunk's retry used to be resubmitted
        # into a pool that a concurrent crash had just broken, and
        # the whole campaign died with BrokenProcessPool.  Every
        # chunk's first attempt is disturbed here (rates sum to 1),
        # coin-flipping between the two kinds across 12 chunks.
        result = run_campaign(
            workers=2, chunk_size=1, policy=FAST,
            chaos=ChaosSpec(seed=3, crash=0.5, poison=0.5))
        assert result.report_json() == oracle_json
        assert result.failure_report.count("crash") >= 1
        assert result.failure_report.count("error") >= 1

    def test_mixed_chaos_with_store_locks(self, oracle_json, tmp_path):
        store = QualificationStore(tmp_path / "chaos.sqlite")
        result = run_campaign(
            workers=2, chunk_size=CHUNK, store=store, policy=FAST,
            chaos="crash=0.2,poison=0.2,lock=0.5,seed=11")
        assert result.report_json() == oracle_json
        assert store.session_write_retries >= 1
        assert store._lock_chaos is None  # seam cleared after the run
        # Every simulated chunk was checkpointed despite the chaos.
        assert result.failure_report.chunk_checkpoints == 4
        # The disturbed store is a perfectly warm cache afterwards.
        warm = run_campaign(workers=1, store=store)
        assert warm.report_json() == oracle_json
        assert warm.store_hits == 1 and warm.store_misses == 0
        store.close()

    def test_failure_report_serialized_not_in_report_json(self):
        result = run_campaign(
            workers=2, chunk_size=CHUNK,
            chaos=ChaosSpec(seed=7, poison=0.35), policy=FAST)
        as_dict = result.to_dict()
        assert as_dict["failure_report"]["errors"] >= 1
        assert "failure_report" not in json.loads(result.report_json())
        assert "recovery event" in result.summary()


# ----------------------------------------------------------------------
# Chunk-level checkpoint/resume: a killed campaign re-simulates
# nothing it already finished
# ----------------------------------------------------------------------
class TestChunkResume:
    def test_kill_mid_campaign_resumes_at_chunk_level(self, tmp_path):
        oracle = run_campaign()
        store = QualificationStore(tmp_path / "resume.sqlite")
        real_put = store.put
        puts = []

        def exploding_put(key, payload):
            if len(puts) == 2:
                raise KeyboardInterrupt("simulated kill")
            real_put(key, payload)
            puts.append(key)

        store.put = exploding_put
        with pytest.raises(KeyboardInterrupt):
            CoverageCampaign(
                TEST, {"FL2": FAULTS}, memory_sizes=[3], workers=2,
                chunk_size=CHUNK, store=store, policy=FAST).run()
        store.put = real_put
        # Two of the four chunks were checkpointed before the kill;
        # the job-level row never landed.
        assert len(store) == 2

        resumed = CoverageCampaign(
            TEST, {"FL2": FAULTS}, memory_sizes=[3], workers=2,
            chunk_size=CHUNK, store=store, policy=FAST).run()
        assert resumed.report_json() == oracle.report_json()
        report = resumed.failure_report
        # The checkpointed chunks were served, not re-simulated, and
        # only the two missing chunks were computed and checkpointed.
        assert report.chunk_hits == 2
        assert report.chunk_checkpoints == 2
        # The resumed run completed the job-level row too: the next
        # run is a pure job-level hit with zero simulation.
        warm = run_campaign(workers=1, store=store)
        assert warm.store_hits == 1 and warm.store_misses == 0
        assert warm.report_json() == oracle.report_json()
        store.close()

    def test_chunk_partition_change_still_correct(self, tmp_path):
        # Checkpoints are content-addressed by chunk; a different
        # chunk_size misses them but must still reach oracle bytes.
        oracle = run_campaign()
        store = QualificationStore(tmp_path / "partition.sqlite")
        first = run_campaign(workers=2, chunk_size=CHUNK, store=store)
        assert first.report_json() == oracle.report_json()
        again = CoverageCampaign(
            TEST, {"FL2": FAULTS}, memory_sizes=[3], workers=2,
            chunk_size=CHUNK + 2, store=store).run()
        # Job-level row exists, so this is served without chunking.
        assert again.store_hits == 1
        assert again.report_json() == oracle.report_json()
        store.close()


# ----------------------------------------------------------------------
# The dictionary build shares the same recovery ladder
# ----------------------------------------------------------------------
class TestDictionaryChaos:
    def test_chaotic_build_matches_serial_oracle(self, tmp_path):
        oracle = build_dictionary(TEST, FAULTS, memory_size=3)
        store = QualificationStore(tmp_path / "dict.sqlite")
        disturbed = build_dictionary(
            TEST, FAULTS, memory_size=3, workers=2, store=store,
            policy=FAST, chaos="crash=0.25,poison=0.25,lock=0.3,seed=5")
        assert disturbed.to_json() == oracle.to_json()
        assert disturbed.failure_report is not None
        assert disturbed.failure_report.chunk_checkpoints \
            == len(FAULTS)
        # The disturbed build checkpointed every fault: a warm
        # rebuild simulates nothing and matches byte-for-byte.
        warm = build_dictionary(
            TEST, FAULTS, memory_size=3, store=store)
        assert warm.simulated_runs == 0
        assert warm.to_json() == oracle.to_json()
        store.close()

    def test_serial_build_has_no_failure_report(self):
        assert build_dictionary(
            TEST, FAULTS[:2], memory_size=3).failure_report is None
