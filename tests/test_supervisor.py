"""Supervised execution layer (``repro.sim.supervisor``).

Unit-level guarantees of the recovery ladder, exercised with toy
picklable workers (see ``harness.py``) so each failure mode is
isolated: result ordering, bounded retry with deterministic backoff,
worker-crash respawn that keeps completed results, hung-chunk timeout
recovery, degradation to fallback arguments and to in-process serial
execution, and the typed :class:`CampaignExecutionError` once every
rung is exhausted.  The campaign/chaos suites prove the same ladder
end-to-end on real qualification work.
"""

import pytest

from repro.sim.supervisor import (
    CampaignExecutionError,
    FailureEvent,
    FailureReport,
    SupervisedTask,
    Supervisor,
    SupervisorPolicy,
)

from harness import (
    toy_crash_until,
    toy_fail_until,
    toy_hang_until,
    toy_require_flag,
    toy_sleep,
    toy_square,
)

#: No backoff sleeps -- retries should be instant under test.
FAST = SupervisorPolicy(backoff_base=0.0)


def squares(count):
    return [
        SupervisedTask(f"square {x}", toy_square, (x,))
        for x in range(count)
    ]


class TestSupervisorPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="timeout"):
            SupervisorPolicy(timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            SupervisorPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            SupervisorPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError, match="degrade_serial_after"):
            SupervisorPolicy(degrade_serial_after=0)
        with pytest.raises(ValueError, match="degrade_backend_after"):
            SupervisorPolicy(degrade_backend_after=0)

    def test_backoff_deterministic_and_bounded(self):
        policy = SupervisorPolicy(backoff_base=0.05, backoff_cap=0.4)
        first = policy.backoff("chunk A", 1)
        assert first == policy.backoff("chunk A", 1)
        assert first != policy.backoff("chunk A", 2)
        assert first != policy.backoff("chunk B", 1)
        for attempt in range(10):
            delay = policy.backoff("chunk A", attempt)
            # Jitter spans [0.5x, 1.5x] of the capped exponential.
            assert 0.0 <= delay <= 0.4 * 1.5

    def test_backoff_zero_base(self):
        assert FAST.backoff("anything", 3) == 0.0

    def test_jitter_seed_changes_schedule(self):
        a = SupervisorPolicy(jitter_seed=0).backoff("chunk", 1)
        b = SupervisorPolicy(jitter_seed=1).backoff("chunk", 1)
        assert a != b


class TestFailureReport:
    def test_empty_report_is_falsy(self):
        report = FailureReport()
        assert not report
        assert len(report) == 0
        assert report.summary() == "no failures"
        assert report.to_dict()["events"] == []

    def test_counts_and_summary(self):
        report = FailureReport()
        report.record("crash", "chunk 1", 0, "died")
        report.record("retry", "chunk 1", 1)
        report.record("crash", "chunk 2", 0)
        assert report
        assert report.count("crash") == 2
        assert report.count("retry") == 1
        assert report.count("timeout") == 0
        assert "2 crash" in report.summary()
        as_dict = report.to_dict()
        assert as_dict["crashes"] == 2
        assert as_dict["retries"] == 1
        assert as_dict["events"][0] == {
            "kind": "crash", "label": "chunk 1", "attempt": 0,
            "detail": "died",
        }

    def test_event_describe(self):
        event = FailureEvent("timeout", "chunk 3", 1, "past budget")
        assert "timeout" in event.describe()
        assert "chunk 3" in event.describe()
        assert FailureEvent("crash", "c", 0).describe() \
            == "crash [c] attempt 0"


class TestSupervisorBasics:
    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            Supervisor(0)

    def test_empty_task_list(self):
        assert Supervisor(2, FAST).run([]) == []

    def test_results_in_task_order(self):
        # Later tasks finish first (descending sleep), results must
        # still come back in submission order.
        tasks = [
            SupervisedTask(f"sleep {x}", toy_sleep,
                           (x, 0.05 * (3 - x)))
            for x in range(4)
        ]
        assert Supervisor(2, FAST).run(tasks) == [0, 1, 2, 3]

    def test_clean_run_records_nothing(self):
        supervisor = Supervisor(2, FAST)
        assert supervisor.run(squares(5)) == [0, 1, 4, 9, 16]
        assert not supervisor.report

    def test_on_complete_fires_once_per_task(self):
        seen = []
        supervisor = Supervisor(2, FAST)
        supervisor.run(
            squares(5),
            on_complete=lambda task, result: seen.append(
                (task.label, result)))
        assert sorted(seen) == [
            (f"square {x}", x * x) for x in range(5)]


class TestRecovery:
    def test_crash_respawns_and_retries(self, tmp_path):
        marker = str(tmp_path / "crash")
        tasks = squares(3) + [SupervisedTask(
            "crasher", toy_crash_until, (7, marker, 1))]
        supervisor = Supervisor(2, FAST)
        assert supervisor.run(tasks) == [0, 1, 4, 7]
        report = supervisor.report
        assert report.count("crash") >= 1
        assert report.count("respawn") >= 1
        assert any(event.label == "crasher" for event in report.events
                   if event.kind == "crash")

    def test_completed_results_survive_a_crash(self, tmp_path):
        # The crasher dies *after* other tasks completed; their
        # results and completion callbacks must not be replayed.
        marker = str(tmp_path / "crash")
        completions = []
        tasks = squares(4) + [SupervisedTask(
            "crasher", toy_crash_until, (9, marker, 1))]
        supervisor = Supervisor(1, FAST)
        results = supervisor.run(
            tasks,
            on_complete=lambda task, result: completions.append(
                task.label))
        assert results == [0, 1, 4, 9, 9]
        assert sorted(completions) == sorted(
            task.label for task in tasks)

    def test_transient_error_is_retried(self, tmp_path):
        marker = str(tmp_path / "flaky")
        tasks = [SupervisedTask(
            "flaky", toy_fail_until, (5, marker, 1))]
        supervisor = Supervisor(2, FAST)
        assert supervisor.run(tasks) == [5]
        assert supervisor.report.count("error") == 1
        assert supervisor.report.count("retry") == 1
        detail = supervisor.report.events[0].detail
        assert "RuntimeError" in detail

    def test_hang_hits_timeout_and_recovers(self, tmp_path):
        marker = str(tmp_path / "hang")
        policy = SupervisorPolicy(timeout=0.75, backoff_base=0.0)
        tasks = [SupervisedTask(
            "hanger", toy_hang_until, (3, marker, 1, 30.0))]
        supervisor = Supervisor(1, policy)
        assert supervisor.run(tasks) == [3]
        assert supervisor.report.count("timeout") == 1
        assert supervisor.report.count("respawn") == 1

    def test_innocent_chunks_survive_a_timeout(self, tmp_path):
        # Chunks queued behind a hung worker must not take a timeout
        # strike: the budget measures a chunk's own execution, so
        # they are resubmitted silently after the pool respawn.  (The
        # pool pre-dispatches one queued item, which may take a
        # spurious strike -- hence the assertion skips "queued 1".)
        marker = str(tmp_path / "hang")
        policy = SupervisorPolicy(timeout=0.75, backoff_base=0.0)
        tasks = [SupervisedTask(
            "hanger", toy_hang_until, (3, marker, 1, 30.0))]
        tasks += [
            SupervisedTask(f"queued {x}", toy_sleep, (x, 0.05))
            for x in range(1, 4)
        ]
        supervisor = Supervisor(1, policy)
        assert supervisor.run(tasks) == [3, 1, 2, 3]
        assert all(event.label not in ("queued 2", "queued 3")
                   for event in supervisor.report.events)

    def test_degrades_to_fallback_arguments(self):
        tasks = [SupervisedTask(
            "needs fallback", toy_require_flag, (4, False),
            fallback_args=(4, True))]
        supervisor = Supervisor(2, FAST)
        assert supervisor.run(tasks) == [4]
        assert supervisor.report.count("degrade-backend") == 1

    def test_degrades_to_in_process_serial(self, tmp_path):
        # Two pool attempts fail; the in-process rung succeeds.
        marker = str(tmp_path / "stubborn")
        policy = SupervisorPolicy(
            backoff_base=0.0, max_retries=1, degrade_serial_after=5)
        tasks = [SupervisedTask(
            "stubborn", toy_fail_until, (6, marker, 2))]
        supervisor = Supervisor(2, policy)
        assert supervisor.run(tasks) == [6]
        assert supervisor.report.count("degrade-serial") == 1

    def test_exhausted_ladder_raises_typed_error(self):
        policy = SupervisorPolicy(
            backoff_base=0.0, max_retries=0, degrade_serial_after=1)
        tasks = [SupervisedTask(
            "doomed chunk", toy_require_flag, (1, False))]
        with pytest.raises(CampaignExecutionError) as excinfo:
            Supervisor(1, policy).run(tasks)
        assert "doomed chunk" in str(excinfo.value)
        assert "RuntimeError" in str(excinfo.value)
        assert excinfo.value.label == "doomed chunk"

    def test_degraded_tasks_still_checkpoint(self, tmp_path):
        marker = str(tmp_path / "late")
        policy = SupervisorPolicy(
            backoff_base=0.0, max_retries=0, degrade_serial_after=1)
        completions = []
        tasks = [SupervisedTask(
            "late bloomer", toy_fail_until, (2, marker, 1))]
        results = Supervisor(1, policy).run(
            tasks,
            on_complete=lambda task, result: completions.append(
                task.label))
        assert results == [2]
        assert completions == ["late bloomer"]
