"""Unit tests for pattern-graph walks (Definitions 9-13)."""

from repro.core.pattern_graph import PatternGraph
from repro.core.walker import PatternWalker
from repro.faults.library import fp_by_name
from repro.faults.linked import LinkedFault, Topology
from repro.march.element import AddressOrder
from repro.march.test import MarchTest
from repro.memory.injection import FaultInstance
from repro.sim.coverage import make_instances


def _graph_with(fault_names, cells=2):
    graph = PatternGraph(cells)
    for name, victim, aggressor in fault_names:
        graph.add_fault_instance(FaultInstance.from_simple(
            fp_by_name(name), victim=victim, aggressor=aggressor))
    return graph


class TestSingleCellWalks:
    def test_walk_chains_sensitize_and_observe(self):
        graph = _graph_with([("WDF0", 0, None)])
        walker = PatternWalker(graph)
        ops = walker.walk(entry_value=0, spec_cell=0)
        text = [str(op) for op in ops]
        # WDF0 needs w0 on a 0-cell, observed by a read expecting 0.
        assert "w0" in text
        assert "r0" in text
        assert text.index("w0") < text.index("r0")

    def test_walk_uses_connectors_to_reach_other_states(self):
        # WDF1 requires the cell at 1; entry state is 0, so the walk
        # must first write 1 (a connecting good edge).
        graph = _graph_with([("WDF1", 0, None)])
        walker = PatternWalker(graph)
        ops = [str(op) for op in walker.walk(entry_value=0, spec_cell=0)]
        assert "w1" in ops
        assert ops.index("w1") < ops.index("r1")

    def test_walk_returns_empty_without_reachable_edges(self):
        graph = _graph_with([("WDF0", 1, None)])  # faults on cell 1 only
        walker = PatternWalker(graph)
        assert walker.walk(entry_value=0, spec_cell=0) == ()

    def test_walk_respects_max_length(self):
        names = [("WDF0", 0, None), ("WDF1", 0, None),
                 ("DRDF0", 0, None), ("DRDF1", 0, None)]
        walker = PatternWalker(_graph_with(names), max_length=4)
        assert len(walker.walk(0, 0)) <= 4 + 1  # + leading read allowance


class TestProposals:
    def test_proposals_produce_consistent_elements(self):
        from repro.faults.operations import write
        from repro.march.element import MarchElement

        names = [("WDF0", 0, None), ("TFU", 0, None)]
        walker = PatternWalker(_graph_with(names))
        proposals = walker.proposals(entry_value=0)
        assert proposals
        init = MarchElement(AddressOrder.ANY, (write(0),))
        for element in proposals:
            # Prefixed with the conventional initialization, every
            # proposal must be fault-free consistent.
            assert MarchTest("t", (init, element)).is_consistent()

    def test_spec_cell_maps_to_address_order(self):
        # Paper Section 5: spec on the lowest cell -> ascending,
        # highest cell -> descending.
        names = [("CFds_0w1_v0", 1, 0)]
        graph = _graph_with(names)
        walker = PatternWalker(graph)
        orders = {el.order for el in walker.proposals(entry_value=0)}
        assert AddressOrder.UP in orders

    def test_cross_cell_proposal_gets_leading_read(self):
        # Aggressor-specified edges defer observation to the victim's
        # visit: the element must start by reading the entry value.
        graph = _graph_with([("CFds_0w1_v0", 1, 0)])
        walker = PatternWalker(graph)
        ops = walker.walk(entry_value=0, spec_cell=0)
        assert ops
        assert ops[0].is_read and ops[0].value == 0


class TestMaskingAvoidance:
    def test_masking_edge_pairs_are_not_chained(self):
        # The eq. (13) pair chains state-wise; Definition 13 forbids
        # taking the masking edge after the masked one in one SO.
        fault = LinkedFault(
            fp_by_name("CFds_0w1_v0"), fp_by_name("CFds_1w0_v1"),
            Topology.LF2AA)
        graph = PatternGraph(2)
        for instance in make_instances(fault, 2):
            graph.add_fault_instance(instance)
        walker = PatternWalker(graph)
        for spec in (0, 1):
            ops = walker.walk(entry_value=0, spec_cell=spec)
            taken_pairs = graph.masking_pairs()
            # The walk exists but never contains a masked edge followed
            # by its masking edge; verify indirectly: the element the
            # walk produces keeps the SO valid (no immediate re-flip of
            # the same victim into its expected value without a read).
            assert isinstance(ops, tuple)
