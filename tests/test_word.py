"""Tests for the word-oriented workload: backgrounds, word memories,
wordization and the word-mode coverage semantics.

The cross-backend differential matrix and the width-1 equivalence
regression live in ``test_word_differential.py``; this module covers
the subsystem's own behaviour -- background sets, placement
enumeration, the sequential-lane operational semantics, the
exists-a-background coverage aggregation and the CLI surface.
"""

import json

import pytest

from harness import report_key
from repro.faults.backgrounds import (
    BACKGROUND_SETS,
    background_str,
    complement,
    intra_word_placements,
    marching_backgrounds,
    normalize_background,
    resolve_backgrounds,
    solid_backgrounds,
    standard_backgrounds,
    word_instances,
    word_role_placements,
)
from repro.faults.library import fp_by_name
from repro.faults.lists import fault_list_2, lf1_faults
from repro.faults.values import DONT_CARE
from repro.march.known import known_march
from repro.march.test import parse_march
from repro.march.wordize import element_word_notation, wordize
from repro.memory.word import (
    SparseWordMemory,
    WordMemory,
    bound_word_cells,
    make_word_memory,
    run_word_march,
    word_detects_instance,
    word_escape_sites,
)
from repro.sim.coverage import (
    CoverageOracle,
    make_instances,
    normalize_word_mode,
    qualify_test,
)
from repro.sim.placements import role_placements


# ----------------------------------------------------------------------
# Background sets
# ----------------------------------------------------------------------
class TestBackgrounds:
    def test_standard_set_size_is_log2_plus_one(self):
        assert standard_backgrounds(1) == ((0,),)
        assert standard_backgrounds(2) == ((0, 0), (0, 1))
        assert standard_backgrounds(4) == (
            (0, 0, 0, 0), (0, 1, 0, 1), (0, 0, 1, 1))
        assert len(standard_backgrounds(8)) == 4
        assert len(standard_backgrounds(16)) == 5

    def test_standard_set_separates_every_lane_pair(self):
        for width in (2, 4, 8, 16):
            backgrounds = standard_backgrounds(width)
            for a in range(width):
                for b in range(a + 1, width):
                    assert any(bg[a] != bg[b] for bg in backgrounds), \
                        (width, a, b)

    def test_marching_and_solid_sets(self):
        assert marching_backgrounds(3) == (
            (0, 0, 0), (1, 0, 0), (1, 1, 0), (1, 1, 1))
        assert solid_backgrounds(4) == ((0,) * 4, (1,) * 4)

    def test_normalize_and_render(self):
        assert normalize_background("0101", 4) == (0, 1, 0, 1)
        assert normalize_background([1, 0], 2) == (1, 0)
        assert background_str((0, 1, 1)) == "011"
        assert complement((0, 1, 0)) == (1, 0, 1)
        with pytest.raises(ValueError, match="lanes must be 0/1"):
            normalize_background("01-1", 4)
        with pytest.raises(ValueError, match="width"):
            normalize_background("01", 4)

    def test_resolve_named_explicit_and_errors(self):
        assert resolve_backgrounds(None, 4) == standard_backgrounds(4)
        assert resolve_backgrounds("solid", 2) == ((0, 0), (1, 1))
        assert resolve_backgrounds(["01", (1, 0), "01"], 2) == (
            (0, 1), (1, 0))  # duplicates dropped, order kept
        for name in BACKGROUND_SETS:
            assert resolve_backgrounds(name, 4)
        with pytest.raises(ValueError, match="unknown background set"):
            resolve_backgrounds("bogus", 4)
        with pytest.raises(ValueError, match="at least one"):
            resolve_backgrounds([], 4)
        with pytest.raises(ValueError, match="positive"):
            standard_backgrounds(0)

    def test_normalize_word_mode(self):
        assert normalize_word_mode(1, None) == (1, None)
        width, backgrounds = normalize_word_mode(4, None)
        assert (width, backgrounds) == (4, standard_backgrounds(4))
        assert normalize_word_mode(1, ((0,),)) == (1, ((0,),))
        with pytest.raises(ValueError):
            normalize_word_mode(0, None)


# ----------------------------------------------------------------------
# Word placements
# ----------------------------------------------------------------------
class TestWordPlacements:
    def test_width_one_reduces_to_bit_placements(self):
        assert word_role_placements(1, 5, 1) == [(0,), (4,)]
        assert word_role_placements(2, 5, 1) == role_placements(2, 5)
        for layout in ("straddle", "all"):
            assert word_role_placements(3, 5, 1, layout) == \
                role_placements(3, 5, layout)

    def test_intra_word_placements_present(self):
        placements = word_role_placements(2, 3, 4)
        # Inter-word at lane 0 of words enumerated the bit way...
        assert (0, 8) in placements and (8, 0) in placements
        # ...plus intra-word lane pairs in the first and last word.
        assert (0, 3) in placements and (3, 0) in placements
        assert (8, 11) in placements and (11, 8) in placements

    def test_single_cell_covers_word_and_lane_boundaries(self):
        assert word_role_placements(1, 3, 4) == [
            (0,), (3,), (8,), (11,)]

    def test_intra_word_only_when_words_too_few(self):
        # One word cannot spread two roles across words, but a wide
        # word hosts them in lanes.
        placements = word_role_placements(2, 1, 8)
        assert placements
        assert all(cell < 8 for placement in placements
                   for cell in placement)
        with pytest.raises(ValueError, match="cannot host"):
            word_role_placements(3, 2, 2)

    def test_intra_word_lane_pairs(self):
        assert intra_word_placements(1, 4) == [(0,), (3,)]
        assert intra_word_placements(2, 4) == \
            role_placements(2, 4)
        with pytest.raises(ValueError, match="lanes"):
            intra_word_placements(3, 2)

    def test_word_instances_binding(self):
        fault = fp_by_name("CFds_0w1_v0")
        instances = word_instances(fault, 3, 4)
        assert len(instances) == len(word_role_placements(2, 3, 4))
        # Memoized: identical tuple object on repeat calls.
        assert word_instances(fault, 3, 4) is instances
        # Width 1 matches the bit-oriented binding exactly.
        assert [i.name for i in word_instances(fault, 5, 1)] == \
            [i.name for i in make_instances(fault, 5)]


# ----------------------------------------------------------------------
# Word memories
# ----------------------------------------------------------------------
class TestWordMemory:
    def test_word_read_write_lanes(self):
        memory = WordMemory(3, 4)
        assert memory.word_state(1) == (DONT_CARE,) * 4
        memory.write_word(1, (0, 1, 1, 0))
        assert memory.word_state(1) == (0, 1, 1, 0)
        assert memory.read_word(1) == (0, 1, 1, 0)
        assert memory.state()[4:8] == (0, 1, 1, 0)
        with pytest.raises(ValueError):
            WordMemory(0, 4)
        with pytest.raises(ValueError):
            WordMemory(3, 0)

    def test_intra_word_coupling_sensitized_by_lane_order(self):
        # CFds <0w1;0/1/->: aggressor lane 3, victim lane 0 of word 0.
        instances = word_instances(fp_by_name("CFds_0w1_v0"), 1, 4)
        instance = next(
            i for i in instances
            if i.primitives[0].aggressor == 3
            and i.primitives[0].victim == 0)
        memory = WordMemory(1, 4, instance)
        memory.write_word(0, (0, 0, 0, 0))
        # Lanes apply in ascending order: the victim lane is written 0
        # first, then the aggressor-lane w1 disturbs it -- the faulty 1
        # survives the word write because the victim lane comes first.
        memory.write_word(0, (0, 0, 0, 1))
        assert memory.word_state(0) == (1, 0, 0, 1)
        # The mirrored placement (victim written last) is overwritten:
        # a solid word write hides it, which is why placements cover
        # both lane orders.
        mirrored = next(
            i for i in instances
            if i.primitives[0].aggressor == 0
            and i.primitives[0].victim == 3)
        memory = WordMemory(1, 4, mirrored)
        memory.write_word(0, (0, 0, 0, 0))
        memory.write_word(0, (1, 0, 0, 0))
        assert memory.word_state(0) == (1, 0, 0, 0)

    def test_sparse_matches_dense_state_after_run(self):
        fault = word_instances(fp_by_name("CFtr_a0_0w1"), 6, 4)[0]
        test = parse_march("c(w0) U(r0,w1) D(r1)")
        background = (0, 1, 0, 1)
        dense = WordMemory(6, 4, fault)
        sparse = SparseWordMemory(6, 4, fault)
        assert run_word_march(test, dense, background) == \
            run_word_march(test, sparse, background)
        assert sparse.state() == dense.state()

    def test_sparse_packed_round_trip(self):
        fault = word_instances(fp_by_name("CFds_0w1_v0"), 64, 8)[0]
        memory = SparseWordMemory(64, 8, fault)
        run_word_march(
            parse_march("c(w0) U(r0,w1)"), memory, (0, 1) * 4)
        packed = memory.packed_state()
        clone = SparseWordMemory(64, 8, fault)
        clone.load_packed(packed)
        assert clone.state() == memory.state()
        assert clone.packed_state() == packed

    def test_sparse_snapshot_is_word_count_independent(self):
        fault_small = word_instances(fp_by_name("TFU"), 8, 4)[0]
        fault_large = word_instances(fp_by_name("TFU"), 4096, 4)[0]
        small = SparseWordMemory(8, 4, fault_small)
        large = SparseWordMemory(4096, 4, fault_large)
        assert small.packed_state() == large.packed_state()
        assert bound_word_cells((5,), 4) == (4, 5, 6, 7)
        assert bound_word_cells((1, 9), 4) == (0, 1, 2, 3, 8, 9, 10, 11)

    def test_sparse_load_state_requires_homogeneous_words(self):
        fault = word_instances(fp_by_name("SF0"), 4, 2)[0]
        memory = SparseWordMemory(4, 2, fault)
        memory.cells.load_state((0, 1, 0, 1, 0, 1, 0, 1))
        assert memory.state() == (0, 1, 0, 1, 0, 1, 0, 1)
        with pytest.raises(ValueError, match="homogeneous"):
            memory.cells.load_state((0, 1, 0, 1, 1, 1, 0, 1))
        with pytest.raises(ValueError, match="size"):
            memory.cells.load_state((0, 1))

    def test_make_word_memory_dispatch(self):
        fault = word_instances(fp_by_name("SF0"), 16, 4)[0]
        assert isinstance(
            make_word_memory(16, 4, fault, "sparse"), SparseWordMemory)
        assert isinstance(
            make_word_memory(16, 4, fault, "auto"), SparseWordMemory)
        dense = make_word_memory(16, 4, fault, "dense")
        assert isinstance(dense, WordMemory)
        assert not isinstance(dense, SparseWordMemory)
        # Below the word-count crossover "auto" stays dense.
        assert not isinstance(
            make_word_memory(3, 4, fault, "auto"), SparseWordMemory)

    def test_golden_word_memories_pass_marches(self):
        test = parse_march("c(w0) U(r0,w1) D(r1,w0) c(r0)")
        for memory in (WordMemory(5, 4), SparseWordMemory(4096, 4)):
            for background in standard_backgrounds(4):
                assert run_word_march(test, memory, background) is None


# ----------------------------------------------------------------------
# Wordization
# ----------------------------------------------------------------------
class TestWordize:
    def test_wordize_runs_and_notation(self):
        test = parse_march("c(w0) U(r0,w1) D(r1,w0)", name="MATS+")
        wordized = wordize(test, 4)
        assert wordized.name == "MATS+ [w4]"
        assert len(wordized) == 3
        assert wordized.complexity == test.complexity * 3
        runs = wordized.runs
        assert [run.background for run in runs] == \
            list(standard_backgrounds(4))
        assert "[bg=0101]" in runs[1].notation()
        assert "w1010" in runs[1].notation()
        assert "r0101" in runs[1].notation()
        assert element_word_notation(
            test.elements[1], (0, 1), ascii_only=True) == "U(r01,w10)"

    def test_wordize_validation(self):
        test = parse_march("c(w0) c(r0)")
        with pytest.raises(ValueError):
            wordize(test, 0)
        with pytest.raises(ValueError):
            wordize(test, 4, ["01"])  # width mismatch

    def test_wordize_qualify_matches_qualify_test(self):
        test = known_march("March C-").test
        wordized = wordize(test, 4)
        via_wordize = wordized.qualify(fault_list_2())
        direct = qualify_test(
            test.with_name(wordized.name), fault_list_2(),
            width=4, backgrounds=wordized.backgrounds)
        assert report_key(via_wordize) == report_key(direct)


# ----------------------------------------------------------------------
# Word-mode coverage semantics
# ----------------------------------------------------------------------
class TestWordCoverageSemantics:
    def test_detection_aggregates_exists_background(self):
        """A fault caught by one background is caught, even when the
        other backgrounds' runs miss it."""
        test = parse_march("c(w0) c(r0)", name="catch-sf0")
        instance = word_instances(fp_by_name("SF0"), 3, 1)[0]
        # Background (0,): writes 0, SF0 flips it, r0 detects.
        # Background (1,): writes 1, SF0 never sensitizes -- escape.
        assert word_detects_instance(
            test, instance, 3, 1, ((0,), (1,)))
        report = qualify_test(
            test, [fp_by_name("SF0")], 3,
            width=1, backgrounds=((0,), (1,)))
        assert report.coverage == 1.0

    def test_solid_one_background_catches_via_complement(self):
        """``w1`` under the all-ones background writes zeros, so the
        solid set still sensitizes SF0 -- the exists-a-background
        aggregation credits the detecting pass."""
        test = parse_march("c(w1) c(r1)", name="complement-catch")
        report = qualify_test(
            test, [fp_by_name("SF0")], 3,
            width=2, backgrounds="solid")
        assert report.coverage == 1.0

    def test_escape_witness_names_background(self):
        # Under the single all-zero background, w1 writes ones and SF0
        # (victim state 0) never sensitizes: a genuine escape whose
        # witness must name the background.
        test = parse_march("c(w1) c(r1)", name="miss-sf0")
        report = qualify_test(
            test, [fp_by_name("SF0")], 3,
            width=2, backgrounds=["00"])
        assert report.coverage == 0.0
        record = report.escapes[0]
        assert record.background == (0, 0)
        assert "[bg=00]" in str(record)

    def test_intra_word_coupling_needs_non_solid_backgrounds(self):
        """The motivating behaviour: solid backgrounds write aggressor
        and victim lanes alike, so intra-word disturbs are overwritten
        or never observed; striped backgrounds expose them."""
        faults = [fp_by_name("CFds_0w1_v0"), fp_by_name("CFst_a1_v0")]
        test = known_march("March SL").test
        solid = qualify_test(
            test, faults, 3, width=4, backgrounds="solid")
        standard = qualify_test(
            test, faults, 3, width=4, backgrounds="standard")
        assert solid.coverage == 0.0
        assert standard.coverage > solid.coverage
        assert all(r.background is not None for r in solid.escapes)

    def test_oracle_detects_consistent_with_evaluate(self):
        faults = [fp_by_name("SF0"), fp_by_name("CFds_0w1_v0"),
                  fp_by_name("TFD")]
        oracle = CoverageOracle(faults, width=4)
        test = known_march("March SL").test
        report = oracle.evaluate(test)
        detected = set(report.detected_names)
        for fault in faults:
            assert oracle.detects(test, fault) == \
                (fault.name in detected)
        assert oracle.instances_of(faults[1])

    def test_word_escape_sites_enumerate_runs(self):
        test = parse_march("c(w0) c(r0)", name="sites")
        instance = word_instances(fp_by_name("SF0"), 3, 2)[0]
        backgrounds = standard_backgrounds(2)
        sites = word_escape_sites(test, instance, 3, 2, backgrounds)
        # 2 backgrounds x 4 resolutions of the two ⇕ elements.
        assert len(sites) == 2 * 4
        assert {bg for bg, _, _ in sites} == set(backgrounds)
        dense = word_escape_sites(
            test, instance, 3, 2, backgrounds, backend="dense")
        sparse = word_escape_sites(
            test, instance, 3, 2, backgrounds, backend="sparse")
        assert dense == sparse

    def test_detection_site_reports_word_and_lane(self):
        # SF1 at cell 3 = word 0, lane 3 of a 3x4 array.
        instance = word_instances(fp_by_name("SF1"), 3, 4)[1]
        assert instance.cells == (3,)
        memory = WordMemory(3, 4, instance)
        site = run_word_march(
            parse_march("c(w1) c(r1)"), memory, (0, 0, 0, 0))
        assert site is not None
        assert (site.word, site.lane) == (0, 3)
        assert site.cell(4) == 3
        assert "word" in str(site) and "lane" in str(site)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestWordCli:
    def test_coverage_width(self, capsys):
        from repro.cli import main

        code = main(["coverage", "March SL", "--fault-list", "2",
                     "--width", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "word mode: width 4" in out
        assert "0101" in out
        assert "100.0 %" in out

    def test_simulate_width_and_explicit_backgrounds(self, capsys):
        from repro.cli import main

        code = main([
            "simulate", "c(w0) c(w0,r0,r0,w1) c(w1,r1,r1,w0)",
            "--fault-list", "2", "--width", "2",
            "--backgrounds", "01", "00"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[w2]" in out
        assert "[bg=01]" in out

    def test_campaign_width_json_shape(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "word_campaign.json"
        code = main([
            "campaign", "--tests", "March SL", "--fault-lists", "2",
            "--width", "8", "--workers", "2", "--json", str(out_path)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "March SL" in printed
        payload = json.loads(out_path.read_text())
        entry = payload["entries"][0]
        assert entry["width"] == 8
        assert entry["backgrounds"] == [
            "00000000", "01010101", "00110011", "00001111"]
        assert entry["complete"] is True
        assert entry["escapes"] == []

    def test_campaign_bit_json_keeps_null_backgrounds(
            self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "bit_campaign.json"
        code = main([
            "campaign", "--tests", "March C-", "--fault-lists", "2",
            "--json", str(out_path)])
        assert code == 1  # March C- leaves FL#2 escapes
        capsys.readouterr()
        entry = json.loads(out_path.read_text())["entries"][0]
        assert entry["width"] == 1
        assert entry["backgrounds"] is None
        assert all(e["background"] is None for e in entry["escapes"])

    def test_generate_width(self, capsys):
        from repro.cli import main

        code = main(["generate", "--fault-list", "lf1",
                     "--width", "2", "--name", "cli-word-gen"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-word-gen" in out
        assert "100.0 %" in out

    def test_invalid_background_is_clean_error(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="invalid word mode"):
            main(["coverage", "March SL", "--fault-list", "2",
                  "--width", "4", "--backgrounds", "01"])
        with pytest.raises(SystemExit, match="invalid campaign"):
            main(["campaign", "--tests", "March SL",
                  "--fault-lists", "2", "--width", "0"])


# ----------------------------------------------------------------------
# Generator word mode
# ----------------------------------------------------------------------
class TestWordGenerator:
    def test_generator_produces_complete_word_test(self):
        from repro.core.generator import MarchGenerator

        result = MarchGenerator(
            lf1_faults(), name="word-gen", width=2).generate()
        assert result.complete
        assert result.report.total == len(
            {f.name for f in lf1_faults()})
        # The word-qualified test must also word-qualify standalone.
        report = qualify_test(
            result.test, lf1_faults(), width=2)
        assert report.complete
