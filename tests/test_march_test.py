"""Unit tests for march tests: notation, complexity, consistency."""

import pytest

from repro.faults.operations import read, write
from repro.faults.values import DONT_CARE
from repro.march.element import AddressOrder, element
from repro.march.test import (
    MarchConsistencyError,
    MarchTest,
    parse_march,
)


def _mats_plus() -> MarchTest:
    return parse_march("c(w0) U(r0,w1) D(r1,w0)", name="MATS+")


class TestStructure:
    def test_needs_elements(self):
        with pytest.raises(ValueError):
            MarchTest("empty", ())

    def test_complexity_counts_operations_per_cell(self):
        assert _mats_plus().complexity == 5

    def test_len_and_iter(self):
        test = _mats_plus()
        assert len(test) == 3
        assert [el.order for el in test] == [
            AddressOrder.ANY, AddressOrder.UP, AddressOrder.DOWN]


class TestNotation:
    def test_describe_mentions_complexity(self):
        assert "(5n)" in _mats_plus().describe()

    def test_notation_round_trip(self):
        test = _mats_plus()
        assert parse_march(test.notation(), name="MATS+") == test

    def test_ascii_notation_round_trip(self):
        test = _mats_plus()
        assert parse_march(
            test.notation(ascii_only=True), name="MATS+") == test

    def test_parse_accepts_table1_spacing(self):
        # Table 1 writes "c (w0)" with a space and no separators.
        test = parse_march("c (w0)  ⇑(r0,w1) ⇑(r1,w0)")
        assert test.complexity == 5

    def test_parse_accepts_braces_and_semicolons(self):
        test = parse_march("{c(w0); U(r0,w1); D(r1,w0)}")
        assert test.complexity == 5

    def test_parse_rejects_leftover_fragments(self):
        with pytest.raises(ValueError):
            parse_march("c(w0) garbage U(r0)")

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_march("   ")


class TestConsistency:
    def test_published_shapes_are_consistent(self):
        _mats_plus().check_consistency()

    def test_read_of_uninitialized_cell_fails(self):
        test = parse_march("U(r0,w1)")
        with pytest.raises(MarchConsistencyError):
            test.check_consistency()

    def test_expectation_free_read_of_unknown_is_fine(self):
        parse_march("U(r,w1) U(r1)").check_consistency()

    def test_wrong_expectation_fails(self):
        test = parse_march("c(w0) U(r1,w0)")
        with pytest.raises(MarchConsistencyError) as err:
            test.check_consistency()
        assert "disagrees" in str(err.value)

    def test_mid_element_expectations_track_writes(self):
        parse_march("c(w0) U(r0,w1,r1,w0,r0)").check_consistency()

    def test_is_consistent_boolean(self):
        assert _mats_plus().is_consistent()
        assert not parse_march("U(r0)").is_consistent()

    def test_entry_states(self):
        states = _mats_plus().entry_states()
        assert states == [DONT_CARE, 0, 1, 0]


class TestTransformations:
    def test_with_name(self):
        assert _mats_plus().with_name("renamed").name == "renamed"

    def test_replace_element(self):
        test = _mats_plus()
        replaced = test.replace_element(
            1, element(AddressOrder.DOWN, [read(0), write(1)]))
        assert replaced.elements[1].order is AddressOrder.DOWN
        assert test.elements[1].order is AddressOrder.UP  # original intact

    def test_drop_element(self):
        test = _mats_plus().drop_element(2)
        assert len(test) == 2

    def test_appended(self):
        test = _mats_plus().appended(
            element(AddressOrder.ANY, [read(0)]))
        assert len(test) == 4
        assert test.complexity == 6
