#!/usr/bin/env python3
"""Figure 1 walkthrough: watch a linked fault mask itself.

Recreates the paper's motivating scenario: two disturb coupling faults
with different aggressor cells (a1, a2) sharing a victim v.  Writing 1
into a1 flips the victim; writing 1 into a2 flips it back, erasing the
evidence before any read can catch it.

The demo then fault-simulates March C- (linked-fault-blind), the
paper's March ABL, and March SL against the fault, showing who gets
fooled, and prints the exact read where detection happens.

Usage::

    python examples/linked_fault_masking_demo.py
"""

from repro import FaultInstance, FaultyMemory, LinkedFault, Topology
from repro.faults.library import fp_by_name
from repro.march.known import MARCH_ABL, MARCH_C_MINUS, MARCH_SL
from repro.sim.coverage import CoverageOracle
from repro.sim.engine import detects_instance, escape_sites


def step_by_step_masking() -> None:
    print("=" * 64)
    print("Step-by-step masking (Figure 1)")
    print("=" * 64)
    fault = LinkedFault(
        fp_by_name("CFds_0w1_v0"),   # FP1 = <0w1; 0/1/->
        fp_by_name("CFds_0w1_v1"),   # FP2 = <0w1; 1/0/->
        Topology.LF3)
    print("Linked fault:", fault.notation())

    # a1 = cell 0, victim = cell 1, a2 = cell 2.
    memory = FaultyMemory(3, FaultInstance.from_linked(fault, (0, 2, 1)))
    for cell in range(3):
        memory.write(cell, 0)
    print(f"  initialized:        memory = {memory.state()}")
    memory.write(0, 1)
    print(f"  w1 on a1 (cell 0):  memory = {memory.state()}  "
          "<- FP1 flipped the victim!")
    memory.write(2, 1)
    print(f"  w1 on a2 (cell 2):  memory = {memory.state()}  "
          "<- FP2 masked it again")
    observed = memory.read(1)
    print(f"  read victim:        observed {observed} == expected 0 -> "
          "the fault is invisible\n")


def who_detects_it() -> None:
    print("=" * 64)
    print("Which march tests detect Figure-1-shaped faults?")
    print("=" * 64)
    # The non-transition-write variant of the Figure 1 fault: March C-
    # never performs a non-transition write, so this pair masks
    # perfectly against it while March ABL / March SL catch it.
    fault = LinkedFault(
        fp_by_name("CFds_0w0_v0"), fp_by_name("CFds_0w0_v1"),
        Topology.LF3)
    print("Fault:", fault.notation())
    oracle = CoverageOracle([fault])
    for known in (MARCH_C_MINUS, MARCH_ABL, MARCH_SL):
        report = oracle.evaluate(known.test)
        verdict = "DETECTED" if report.complete else "MASKED (escape!)"
        print(f"  {known.name:12s} ({known.complexity:2d}n): {verdict}")
    print()

    # Show exactly where March ABL catches one instance.
    instance = oracle.instances_of(fault)[0]
    print(f"Detection sites of {MARCH_ABL.name} on {instance.name}:")
    for resolution, site in escape_sites(MARCH_ABL.test, instance, 3):
        tag = "".join("D" if d else "U" for d in resolution) or "-"
        print(f"  ⇕ resolution {tag}: {site}")
    print()

    # And show March C- escaping on the same instance.
    escaped = not detects_instance(MARCH_C_MINUS.test, instance, 3)
    print(f"March C- lets the same instance escape: {escaped}")
    assert escaped


def main() -> None:
    step_by_step_masking()
    who_detects_it()


if __name__ == "__main__":
    main()
