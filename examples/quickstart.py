#!/usr/bin/env python3
"""Quickstart: generate and validate a march test in ~20 lines.

Runs the full pipeline of the paper on Fault List #2 (the single-cell
static linked faults): automatic generation, redundancy pruning, and
independent validation by fault simulation.

Usage::

    python examples/quickstart.py
"""

from repro import CoverageOracle, MarchGenerator, fault_list_2


def main() -> None:
    faults = fault_list_2()
    print(f"Target fault list: {len(faults)} single-cell linked faults")
    print("First three targets:")
    for fault in faults[:3]:
        print(f"  {fault.name}: {fault.notation()}")

    # Generate a march test covering the whole list (Figure 5 + pruning).
    result = MarchGenerator(faults, name="My March").generate()
    print()
    print("Generated:", result.test.describe())
    print(f"CPU time: {result.seconds:.2f}s "
          f"({result.iterations} iterations)")

    # Validate it with an independent batch oracle -- exactly what the
    # paper does with its in-house fault simulator [13].
    oracle = CoverageOracle(faults)
    report = oracle.evaluate(result.test)
    print("Validation:", report.summary())
    assert report.complete, "generated test must reach 100 % coverage"

    # The paper's March ABL1 is 9n; March LF1 (the prior art) is 11n.
    print(f"\nComplexity: {result.test.complexity}n "
          "(paper's March ABL1: 9n, prior March LF1: 11n)")


if __name__ == "__main__":
    main()
