#!/usr/bin/env python3
"""Validate every published march test against the paper's fault lists.

Reproduces the validation flow of the paper's Section 6 ("All generated
March Tests have been verified using an ad hoc memory fault simulator")
across the whole registry of published tests, and prints the coverage
matrix -- the quantitative backdrop of Table 1's comparison columns.

Usage::

    python examples/validate_published.py
"""

from repro import fault_list_1, fault_list_2
from repro.analysis.compare import coverage_matrix
from repro.faults.lists import simple_static_faults
from repro.march.known import ALL_KNOWN
from repro.sim.coverage import CoverageOracle


def main() -> None:
    tests = [km.test for km in ALL_KNOWN.values()]
    lists = {
        "FL#1": fault_list_1(),
        "FL#2": fault_list_2(),
        "simple": simple_static_faults(),
    }
    print("Coverage matrix (fault coverage %, simulated):\n")
    print(coverage_matrix(tests, lists).render())

    print("\nReproduction anchors:")
    oracle1 = CoverageOracle(lists["FL#1"])
    oracle2 = CoverageOracle(lists["FL#2"])
    anchors = [
        ("March ABL covers Fault List #1",
         oracle1.evaluate(ALL_KNOWN["March ABL"].test).complete),
        ("March ABL1 covers Fault List #2",
         oracle2.evaluate(ALL_KNOWN["March ABL1"].test).complete),
        ("March SL covers Fault List #1",
         oracle1.evaluate(ALL_KNOWN["March SL"].test).complete),
        ("March LF1 covers Fault List #2",
         oracle2.evaluate(ALL_KNOWN["March LF1"].test).complete),
        ("March C- does NOT cover Fault List #1",
         not oracle1.evaluate(ALL_KNOWN["March C-"].test).complete),
    ]
    for claim, holds in anchors:
        print(f"  [{'ok' if holds else 'FAIL'}] {claim}")

    rabl = oracle1.evaluate(ALL_KNOWN["March RABL"].test)
    print(f"\nReproduction finding -- March RABL measures "
          f"{len(rabl.detected_names)}/{rabl.total} on Fault List #1; "
          f"escapes:")
    for fault in rabl.escaped_faults:
        print(f"    {fault.name}")


if __name__ == "__main__":
    main()
