#!/usr/bin/env python3
"""Tour of the extensions beyond the paper's core contribution.

The paper's Section 7 lists two ongoing-work directions, both built
here, plus two more that round out an industrial flow:

1. **Address-order constraints** -- "March Tests with particular
   address orders (i.e., all increasing or all decreasing) can be
   implemented more efficiently": generate an all-ascending test.
2. **Multi-port memories** -- dual-port SRAM substrate with weak
   inter-port faults that no single-port march can sensitize.
3. **Dynamic faults** -- two-operation sensitizations (the authors'
   companion ETS 2005 generator targets these).
4. **Test-program codegen** -- emit deployable C from any march test.

Usage::

    python examples/extensions_tour.py
"""

from repro import MarchGenerator
from repro.analysis.codegen import application_time, to_c_function
from repro.faults.dynamic import dynamic_single_cell_faults
from repro.faults.lists import fault_list_2
from repro.march.element import AddressOrder
from repro.memory.multiport import (
    dual_port_coverage,
    march_d2pf,
    weak_faults,
)


def order_constrained_generation() -> None:
    print("=" * 64)
    print("1. Address-order constrained generation (Section 7)")
    print("=" * 64)
    for order, label in ((AddressOrder.UP, "all ascending"),
                         (AddressOrder.DOWN, "all descending")):
        result = MarchGenerator(
            fault_list_2(), name=f"March {label}",
            allowed_orders=(order,)).generate()
        print(f"  {label}: {result.test.describe()}")
        assert result.complete
    print()


def dual_port_weak_faults() -> None:
    print("=" * 64)
    print("2. Dual-port memories and weak inter-port faults")
    print("=" * 64)
    faults = weak_faults()
    print(f"  weak fault space: {len(faults)} primitives, e.g.:")
    for fp in faults[:3]:
        print(f"    {fp}")
    test = march_d2pf()
    detected, escaped = dual_port_coverage(test, faults)
    print(f"  {test.describe()}")
    print(f"  coverage: {len(detected)}/{len(faults)} "
          f"(escaped: {[f.name for f in escaped]})")
    assert not escaped
    print()


def dynamic_fault_generation() -> None:
    print("=" * 64)
    print("3. Two-operation dynamic faults (companion work, ETS 2005)")
    print("=" * 64)
    faults = dynamic_single_cell_faults()
    print(f"  target: {len(faults)} single-cell dynamic FPs, e.g. "
          f"{faults[0]}")
    result = MarchGenerator(faults, name="March dyn").generate()
    print(f"  {result.test.describe()}")
    print(f"  coverage: {result.report.summary()}")
    assert result.complete
    print()


def code_generation() -> None:
    print("=" * 64)
    print("4. Deployable test programs")
    print("=" * 64)
    result = MarchGenerator(fault_list_2(), name="My March").generate()
    code = to_c_function(result.test)
    print("\n".join(code.splitlines()[:14]))
    print("    ... (full function omitted)")
    megabit = 1 << 20
    seconds = application_time(result.test, megabit, cycle_ns=10.0)
    print(f"\n  test time on a 1 Mib SRAM at 10 ns/access: "
          f"{seconds * 1e3:.2f} ms")


def main() -> None:
    order_constrained_generation()
    dual_port_weak_faults()
    dynamic_fault_generation()
    code_generation()


if __name__ == "__main__":
    main()
