#!/usr/bin/env python3
"""Generate a march test for a user-defined fault list.

The paper highlights that its model lets users "possibly add new
user-defined faults" (Section 7).  This example builds a custom fault
list three ways:

1. picking canonical primitives from the library by name;
2. parsing fault primitives from the paper's ``<S/F/R>`` notation;
3. combining primitives into linked faults with an explicit topology;

then generates, prunes and validates a march test for exactly that
list.

Usage::

    python examples/generate_custom.py
"""

from repro import (
    CoverageOracle,
    LinkedFault,
    MarchGenerator,
    Topology,
    fp_by_name,
    parse_fp,
)


def build_custom_fault_list():
    # --- 1. Canonical primitives by name (simple, unlinked faults).
    simple = [
        fp_by_name("TFU"),            # up-transition fault
        fp_by_name("DRDF1"),          # deceptive read destructive
        fp_by_name("CFds_1r1_v0"),    # read-disturb coupling
    ]

    # --- 2. A user-defined primitive in the paper's notation:
    # "writing 0 over 0 while the neighbour holds 1 flips the cell".
    custom_fp = parse_fp("<1;0w0/1/->", name="MyCFwd")
    simple.append(custom_fp)

    # --- 3. Linked faults built from components (Definition 6/7).
    linked = [
        LinkedFault(fp_by_name("TFU"), fp_by_name("WDF0"), Topology.LF1),
        LinkedFault(fp_by_name("DRDF0"), fp_by_name("DRDF1"),
                    Topology.LF1),
        LinkedFault(fp_by_name("CFds_0w1_v0"), fp_by_name("RDF1"),
                    Topology.LF2AV),
        LinkedFault(fp_by_name("CFds_0w1_v0"), fp_by_name("CFds_0w1_v1"),
                    Topology.LF3),
    ]
    return simple + linked


def main() -> None:
    faults = build_custom_fault_list()
    print(f"Custom fault list ({len(faults)} targets):")
    for fault in faults:
        notation = (fault.notation()
                    if hasattr(fault, "notation") else str(fault))
        print(f"  {fault.name}: {notation}")

    result = MarchGenerator(faults, name="March Custom").generate()
    print()
    print("Generated:", result.test.describe())
    print("Generation trace:")
    for step in result.trace:
        print(f"  {step}")

    report = CoverageOracle(faults).evaluate(result.test)
    print()
    print("Independent validation:", report.summary())
    assert report.complete

    # Compare with the classic March C- on the same custom list.
    from repro.march.known import MARCH_C_MINUS
    c_report = CoverageOracle(faults).evaluate(MARCH_C_MINUS.test)
    print(f"March C- on the same list: {c_report.summary()} "
          f"(missing: {[f.name for f in c_report.escaped_faults]})")


if __name__ == "__main__":
    main()
