#!/usr/bin/env python3
"""Reproduce the paper's Table 1 end to end.

Generates march tests for both fault lists, verifies 100 % coverage,
and prints the reconstructed table side by side with the paper's
published rows (March ABL 37n, March RABL 35n, March ABL1 9n; CPU
times of ~1 s on a 2006 AMD laptop).

Expect a couple of minutes of CPU: the fault-simulation oracle
qualifies every candidate element against up to 876 linked faults over
all placements and address-order resolutions.

Usage::

    python examples/table1_reproduction.py
"""

from repro import fault_list_1, fault_list_2
from repro.analysis.compare import build_table1, render_table1
from repro.analysis.table import TextTable


PAPER_TABLE1 = (
    ("March ABL", "#1", 1.03, 37, "13.9%", "9.7%", "-"),
    ("March RABL", "#1", 1.35, 35, "18.6%", "14.6%", "-"),
    ("March ABL1", "#2", 0.98, 9, "-", "-", "18.1%"),
)


def print_paper_rows() -> None:
    table = TextTable([
        "March Test", "Fault List", "CPU Time (s)", "O(n)",
        "vs 43n [11]", "vs 41n SL", "vs 11n LF1"])
    for name, flist, cpu, k, i43, i41, i11 in PAPER_TABLE1:
        table.add_row([name, flist, f"{cpu:.2f}", f"{k}n", i43, i41, i11])
    print("Paper's Table 1 (published values):\n")
    print(table.render())


def main() -> None:
    print_paper_rows()
    print("\nRegenerating with our pipeline (this takes a minute)...\n")
    rows = build_table1(fault_list_1(), fault_list_2())
    print("Reproduced Table 1 (measured):\n")
    print(render_table1(rows))
    print(
        "\nShape check: every generated test reaches 100 % coverage and "
        "is shorter\nthan every baseline targeting its fault list -- the "
        "paper's headline claim.")
    for row in rows:
        assert row.coverage_percent == 100.0, row.name


if __name__ == "__main__":
    main()
