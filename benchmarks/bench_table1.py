"""Table 1 reproduction: generate march tests for both fault lists.

The paper's Table 1 reports three generated tests:

=============  ==========  ========  =====  ====================================
March Test     Fault List  CPU (s)   O(n)   improvement vs 43n / 41n SL / 11n LF1
=============  ==========  ========  =====  ====================================
March ABL      #1          1.03      37n    13.9 % / 9.7 % / --
March RABL     #1          1.35      35n    18.6 % / 14.6 % / --
March ABL1     #2          0.98      9n     -- / -- / 18.1 %
=============  ==========  ========  =====  ====================================

Each benchmark below regenerates one row: it times the full generation
pipeline, verifies 100 % simulated coverage and prints the paper-style
row next to the paper's value.  Absolute lengths may differ (our
generator plus pruner typically lands *below* the paper's lengths);
the comparison claims that must hold are asserted:

* 100 % coverage of the target fault list;
* generated length strictly below every baseline targeting that list.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.compare import improvement
from repro.analysis.table import TextTable
from repro.core.generator import MarchGenerator
from repro.march.known import MARCH_43N, MARCH_LF1, MARCH_SL
from repro.sim.coverage import CoverageOracle

PAPER_ROWS = {
    "ABL": {"list": "#1", "cpu": 1.03, "complexity": 37},
    "RABL": {"list": "#1", "cpu": 1.35, "complexity": 35},
    "ABL1": {"list": "#2", "cpu": 0.98, "complexity": 9},
}


def _report(results_dir, label, result, paper):
    table = TextTable([
        "row", "fault list", "CPU (s)", "O(n)", "coverage %",
        "vs 43n", "vs 41n SL", "vs 11n LF1"])
    ours = result.test.complexity
    table.add_row([
        f"{label} (paper)", paper["list"], f"{paper['cpu']:.2f}",
        f"{paper['complexity']}n", "100.0",
        f"{improvement(paper['complexity'], 43):.1f}%"
        if paper["list"] == "#1" else "-",
        f"{improvement(paper['complexity'], 41):.1f}%"
        if paper["list"] == "#1" else "-",
        f"{improvement(paper['complexity'], 11):.1f}%"
        if paper["list"] == "#2" else "-",
    ])
    table.add_row([
        f"{label} (ours)", paper["list"], f"{result.seconds:.2f}",
        f"{ours}n", f"{100.0 * result.report.coverage:.1f}",
        f"{improvement(ours, 43):.1f}%" if paper["list"] == "#1" else "-",
        f"{improvement(ours, 41):.1f}%" if paper["list"] == "#1" else "-",
        f"{improvement(ours, 11):.1f}%" if paper["list"] == "#2" else "-",
    ])
    emit(results_dir, f"table1_{label.lower()}",
         table.render() + "\n\ngenerated: " + result.test.describe())


def test_table1_row_abl(benchmark, fl1, results_dir):
    """Row 1: full generator against Fault List #1 (March ABL analogue)."""
    result = benchmark.pedantic(
        lambda: MarchGenerator(fl1, name="Gen ABL (repro)").generate(),
        rounds=1, iterations=1)
    assert result.complete
    assert result.test.complexity < MARCH_SL.complexity
    assert result.test.complexity < MARCH_43N.complexity
    _report(results_dir, "ABL", result, PAPER_ROWS["ABL"])


def test_table1_row_rabl(benchmark, fl1, results_dir):
    """Row 2: the grammar-only variant (March RABL analogue).

    The paper's RABL comes from the same algorithm with a different
    exploration; we regenerate with the pattern-graph walker disabled,
    which exercises an independent proposal path.
    """
    result = benchmark.pedantic(
        lambda: MarchGenerator(
            fl1, name="Gen RABL (repro)", use_walker=False).generate(),
        rounds=1, iterations=1)
    assert result.complete
    assert result.test.complexity < MARCH_SL.complexity
    _report(results_dir, "RABL", result, PAPER_ROWS["RABL"])


def test_table1_row_abl1(benchmark, fl2, results_dir):
    """Row 3: Fault List #2 (March ABL1 analogue, paper: 9n)."""
    result = benchmark.pedantic(
        lambda: MarchGenerator(fl2, name="Gen ABL1 (repro)").generate(),
        rounds=1, iterations=1)
    assert result.complete
    assert result.test.complexity < MARCH_LF1.complexity
    # The paper's headline: a 9n test for the single-cell linked list.
    assert result.test.complexity == 9
    _report(results_dir, "ABL1", result, PAPER_ROWS["ABL1"])


def test_table1_baseline_coverages(benchmark, fl1, fl2, results_dir):
    """Sanity row: the baselines' own coverage on the two lists."""
    oracle1 = CoverageOracle(fl1)
    oracle2 = CoverageOracle(fl2)

    def evaluate_baselines():
        return (
            oracle1.evaluate(MARCH_SL.test),
            oracle1.evaluate(MARCH_43N.test),
            oracle2.evaluate(MARCH_LF1.test),
        )

    sl, forty3, lf1_report = benchmark.pedantic(
        evaluate_baselines, rounds=1, iterations=1)
    assert sl.complete and forty3.complete and lf1_report.complete
    table = TextTable(["baseline", "O(n)", "list", "coverage %"])
    table.add_row(["March SL", "41n", "#1", f"{100 * sl.coverage:.1f}"])
    table.add_row(["43n March Test", "43n", "#1",
                   f"{100 * forty3.coverage:.1f}"])
    table.add_row(["March LF1", "11n", "#2",
                   f"{100 * lf1_report.coverage:.1f}"])
    emit(results_dir, "table1_baselines", table.render())
