"""Figure 2 reproduction: the fault-free memory model G0 (n = 2).

The figure draws a labelled digraph with 4 states (00, 01, 10, 11) and,
per state, edges for every write (``w0i``, ``w1i``, ``w0j``, ``w1j``),
the two reads and the wait operation.  We rebuild it, assert the exact
structure and export the DOT source.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.table import TextTable
from repro.faults.operations import read, write
from repro.memory.graph import build_memory_graph


def test_fig2_g0_structure(benchmark, results_dir):
    graph = benchmark(lambda: build_memory_graph(2))
    # |V| = 2^n = 4; |E| = (3n + 1) * 2^n = 28 labelled edges.
    assert graph.vertex_count() == 4
    assert graph.edge_count() == 28
    # Spot-check transitions visible in the published figure.
    assert graph.edge_for((0, 0), write(1, 0)).dst == (1, 0)
    assert graph.edge_for((0, 1), write(0, 1)).dst == (0, 0)
    assert graph.edge_for((1, 1), read(None, 0)).label == "r[0]/1"
    table = TextTable(["property", "value"])
    table.add_row(["states", graph.vertex_count()])
    table.add_row(["labelled edges", graph.edge_count()])
    table.add_row(["out-degree per state", 7])
    emit(results_dir, "fig2_g0_structure", table.render())


def test_fig2_g0_dot_export(benchmark, results_dir):
    graph = build_memory_graph(2)
    dot = benchmark(graph.to_dot)
    assert dot.startswith("digraph")
    (results_dir / "fig2_g0.dot").write_text(dot + "\n")
    print(f"\nDOT written to {results_dir / 'fig2_g0.dot'}")


@pytest.mark.parametrize("cells", [1, 2, 3, 4])
def test_g0_scaling(benchmark, cells, results_dir):
    """Graph construction scales as (3n + 1) * 2^n edges."""
    graph = benchmark(lambda: build_memory_graph(cells))
    assert graph.edge_count() == (3 * cells + 1) * 2 ** cells
