"""Shared fixtures for the benchmark harness.

Fault lists and oracles are session-scoped: building them is cheap but
the benchmarks should time the operations under study, not list
construction.  Every benchmark writes its report table to
``benchmarks/results/`` so the regenerated paper artifacts persist as
plain-text files.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.faults.lists import (
    fault_list_1,
    fault_list_2,
    simple_static_faults,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def fl1():
    return fault_list_1()


@pytest.fixture(scope="session")
def fl2():
    return fault_list_2()


@pytest.fixture(scope="session")
def simple_faults():
    return simple_static_faults()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a report table and persist it under benchmarks/results/."""
    print(f"\n===== {name} =====")
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
