"""Ablations over the generator's design choices (DESIGN.md X2).

Four axes:

* proposal sources: walker+shapes (default) vs walker-only vs
  shapes-only;
* redundancy pruning: on vs off (the paper's non-redundancy pass);
* LF3 placement layout: the calibrated ``straddle`` vs the stricter
  ``all`` (DESIGN.md §3.3);
* order generalization: whether fixed orders are relaxed to ``⇕``.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.table import TextTable
from repro.core.generator import MarchGenerator
from repro.sim.coverage import CoverageOracle


def _run(faults, **options):
    return MarchGenerator(faults, name="ablation", **options).generate()


def test_ablation_proposal_sources(benchmark, fl2, results_dir):
    def run_all():
        return {
            "walker+shapes": _run(fl2),
            "shapes only": _run(fl2, use_walker=False),
            "walker only": _run(fl2, use_shapes=False),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = TextTable(
        ["proposal source", "O(n)", "coverage %", "CPU (s)"])
    for label, result in results.items():
        table.add_row([
            label, f"{result.test.complexity}n",
            f"{100 * result.report.coverage:.1f}",
            f"{result.seconds:.2f}"])
    emit(results_dir, "ablation_proposals", table.render())
    assert results["walker+shapes"].complete
    assert results["shapes only"].complete


def test_ablation_pruning(benchmark, fl1, results_dir):
    def run_both():
        return _run(fl1, prune=False), _run(fl1, prune=True)

    unpruned, pruned = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    assert unpruned.complete and pruned.complete
    assert pruned.test.complexity <= unpruned.test.complexity
    table = TextTable(["pruning", "O(n)", "elements", "CPU (s)"])
    table.add_row(["off", f"{unpruned.test.complexity}n",
                   len(unpruned.test), f"{unpruned.seconds:.2f}"])
    table.add_row(["on", f"{pruned.test.complexity}n",
                   len(pruned.test), f"{pruned.seconds:.2f}"])
    emit(results_dir, "ablation_pruning", table.render())


def test_ablation_lf3_layout(benchmark, fl1, results_dir):
    """Generating against the stricter all-orderings LF3 layout.

    The resulting test must still fully cover the calibrated straddle
    semantics (it is a superset requirement)."""

    def run_both_layouts():
        straddle = _run(fl1)
        strict = _run(fl1, lf3_layout="all")
        return straddle, strict

    straddle, strict = benchmark.pedantic(
        run_both_layouts, rounds=1, iterations=1)
    assert straddle.complete
    table = TextTable(
        ["LF3 layout", "O(n)", "coverage %", "CPU (s)"])
    for label, result in (("straddle", straddle), ("all", strict)):
        table.add_row([
            label, f"{result.test.complexity}n",
            f"{100 * result.report.coverage:.1f}",
            f"{result.seconds:.2f}"])
    emit(results_dir, "ablation_lf3_layout", table.render())
    # The strict-layout test still covers the straddle semantics.
    oracle = CoverageOracle(fl1, lf3_layout="straddle")
    assert oracle.evaluate(strict.test).complete


def test_ablation_order_generalization(benchmark, fl2, results_dir):
    def run_both():
        return (
            _run(fl2, generalize_orders=False),
            _run(fl2, generalize_orders=True),
        )

    fixed, general = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert fixed.complete and general.complete
    from repro.march.element import AddressOrder
    any_count = sum(
        1 for el in general.test.elements
        if el.order is AddressOrder.ANY)
    table = TextTable(["generalization", "O(n)", "⇕ elements"])
    table.add_row(["off", f"{fixed.test.complexity}n",
                   sum(1 for el in fixed.test.elements
                       if el.order is AddressOrder.ANY)])
    table.add_row(["on", f"{general.test.complexity}n", any_count])
    emit(results_dir, "ablation_orders", table.render())
