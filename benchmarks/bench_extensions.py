"""Extension experiments (paper Section 7's ongoing work).

* order-constrained generation (all-ascending / all-descending);
* dual-port weak faults: single-port blindness vs March d2PF;
* dynamic fault generation and the static tests' coverage gap.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.table import TextTable
from repro.core.generator import MarchGenerator
from repro.faults.dynamic import dynamic_faults, dynamic_single_cell_faults
from repro.march.element import AddressOrder
from repro.march.known import MARCH_SL, MARCH_SS
from repro.memory.multiport import (
    DualPortElement,
    DualPortMarchTest,
    DualPortStep,
    dual_port_coverage,
    march_d2pf,
    weak_faults,
)
from repro.faults.operations import read, write
from repro.sim.coverage import CoverageOracle


def test_ext_order_constrained_generation(benchmark, fl2, results_dir):
    """All-ascending / all-descending tests for Fault List #2."""

    def run_both():
        up = MarchGenerator(
            fl2, name="mono-up",
            allowed_orders=(AddressOrder.UP,)).generate()
        down = MarchGenerator(
            fl2, name="mono-down",
            allowed_orders=(AddressOrder.DOWN,)).generate()
        return up, down

    up, down = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert up.complete and down.complete
    table = TextTable(["constraint", "O(n)", "coverage %", "notation"])
    for label, result in (("all ⇑", up), ("all ⇓", down)):
        table.add_row([
            label, f"{result.test.complexity}n",
            f"{100 * result.report.coverage:.1f}",
            result.test.notation()])
    emit(results_dir, "ext_order_constrained", table.render())


def test_ext_dual_port_weak_faults(benchmark, results_dir):
    """Single-port marches are blind to weak faults; March d2PF is not."""
    single_port = DualPortMarchTest(
        "March SS (single-port)",
        (
            DualPortElement(AddressOrder.ANY, (DualPortStep(write(0)),)),
            DualPortElement(AddressOrder.UP, tuple(
                DualPortStep(op) for op in (
                    read(0), read(0), write(0), read(0), write(1)))),
            DualPortElement(AddressOrder.UP, tuple(
                DualPortStep(op) for op in (
                    read(1), read(1), write(1), read(1), write(0)))),
            DualPortElement(AddressOrder.ANY, (DualPortStep(read(0)),)),
        ),
    )

    def evaluate_both():
        return (
            dual_port_coverage(single_port, weak_faults()),
            dual_port_coverage(march_d2pf(), weak_faults()),
        )

    (sp_detected, sp_escaped), (dp_detected, dp_escaped) = \
        benchmark(evaluate_both)
    assert not sp_detected          # total blindness
    assert not dp_escaped           # total coverage
    table = TextTable(["test", "steps/cell", "weak faults detected"])
    table.add_row([single_port.name, f"{single_port.complexity}n",
                   f"{len(sp_detected)}/10"])
    table.add_row([march_d2pf().name, f"{march_d2pf().complexity}n",
                   f"{len(dp_detected)}/10"])
    emit(results_dir, "ext_dual_port", table.render())


def test_ext_dynamic_generation(benchmark, results_dir):
    """Static-era tests vs generated tests on the dynamic space."""
    faults = dynamic_faults()
    oracle = CoverageOracle(faults)

    def run_all():
        ss = oracle.evaluate(MARCH_SS.test)
        sl = oracle.evaluate(MARCH_SL.test)
        single = MarchGenerator(
            dynamic_single_cell_faults(), name="Gen dyn-1").generate()
        full = MarchGenerator(faults, name="Gen dyn").generate()
        return ss, sl, single, full

    ss, sl, single, full = benchmark.pedantic(
        run_all, rounds=1, iterations=1)
    assert full.complete and single.complete
    table = TextTable(["test", "O(n)", "dynamic coverage %"])
    table.add_row(["March SS", "22n", f"{100 * ss.coverage:.1f}"])
    table.add_row(["March SL", "41n", f"{100 * sl.coverage:.1f}"])
    table.add_row(["Gen dyn-1 (18 faults)",
                   f"{single.test.complexity}n", "100.0"])
    table.add_row(["Gen dyn (66 faults)",
                   f"{full.test.complexity}n", "100.0"])
    emit(results_dir, "ext_dynamic", table.render())
