"""Figure 3 reproduction: linked test-pattern chaining.

Figure 3 shows a linked fault drawn as two chained faulty edges: the
first test pattern leaves the memory in ``Fv1`` which equals ``I2``,
the initial state of the second pattern (Definition 7).  We regenerate
the chain for the paper's equation (13) pair and benchmark AFP
enumeration over the whole of Fault List #1.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.table import TextTable
from repro.core.afp import afps_for_bound_primitive, linked_afp_chains
from repro.faults.library import fp_by_name
from repro.faults.linked import LinkedFault, Topology
from repro.memory.injection import FaultInstance
from repro.sim.coverage import make_instances


def test_fig3_equation_13_chain(benchmark, results_dir):
    """(00, w[0]1, 11, 10) -> (11, w[0]0, 00, 01): the paper's chain."""
    fault = LinkedFault(
        fp_by_name("CFds_0w1_v0"), fp_by_name("CFds_1w0_v1"),
        Topology.LF2AA)
    instance = FaultInstance.from_linked(fault, (0, 1))
    chains = benchmark(lambda: linked_afp_chains(instance, 2))
    assert len(chains) == 1
    afp1, afp2 = chains[0]
    assert afp2.initial == afp1.faulty          # I2 = Fv1
    victim = afp1.victim
    assert afp2.faulty[victim] != afp1.faulty[victim]  # F2 = NOT F1
    table = TextTable(["component", "AFP (I, Es, Fv, Gv)", "test pattern"])
    table.add_row(["FP1", afp1.notation(),
                   afp1.to_test_pattern().notation()])
    table.add_row(["FP2", afp2.notation(),
                   afp2.to_test_pattern().notation()])
    emit(results_dir, "fig3_linked_chain", table.render())


def test_fig3_afp_enumeration_over_fault_list(benchmark, fl1, results_dir):
    """AFP expansion of the full Fault List #1 on the 3-cell model."""

    def expand_all():
        total_afps = 0
        direct_chains = 0
        for fault in fl1:
            for instance in make_instances(fault, 3):
                for bound in instance.primitives:
                    total_afps += len(afps_for_bound_primitive(bound, 3))
                direct_chains += len(linked_afp_chains(instance, 3))
        return total_afps, direct_chains

    total_afps, direct_chains = benchmark.pedantic(
        expand_all, rounds=1, iterations=1)
    assert total_afps > len(fl1)
    table = TextTable(["metric", "value"])
    table.add_row(["linked faults", len(fl1)])
    table.add_row(["addressed fault primitives", total_afps])
    table.add_row(["directly chained AFP pairs (Def. 7)", direct_chains])
    emit(results_dir, "fig3_afp_enumeration", table.render())
