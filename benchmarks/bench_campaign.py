#!/usr/bin/env python3
"""Campaign engine benchmark and regression gate.

Runs the same multi-test coverage-campaign workload twice -- serial
(``workers=1``, today's oracle path) and parallel (process-pool
fan-out) -- and writes ``BENCH_campaign.json`` with wall time,
contexts/second and an entry-by-entry identity verdict.

With ``--sizes N N N`` (e.g. ``--sizes 3 64 256``) the script
additionally runs the **sparse-kernel scaling sweep**: the same
workload per memory size, once on the dense every-cell kernel and
once on the sparse bound-cell kernel, writing per-size wall time,
contexts/second, the sparse/dense speedup and an identity verdict to
``BENCH_sparse.json`` (``--sparse-out``).

With ``--bitpar-sizes N N`` (e.g. ``--bitpar-sizes 3 64``) the script
additionally runs the **bit-parallel scaling sweep**: the same
workload per memory size, dense vs the ``bitpar`` lane-packing
kernel, appended to the main payload as ``bitpar`` -- per-size wall
time, the bitpar/dense speedup and an identity verdict enter
``BENCH_campaign.json`` and its regression gate.

With ``--widths W W W`` (e.g. ``--widths 1 4 8``) the script also
runs the **word-mode sweep**: a compact word-oriented campaign per
width, dense vs lane-sparse kernel, appended to the main payload as
``width_sweep`` so word-mode performance and cross-backend identity
enter the same regression gate.

With ``--store`` the script additionally runs the **qualification
store leg**: the same serial workload cold (fresh store, all misses)
and then warm (second run against the now-populated store, all hits),
appended as ``store`` -- the warm run must be at least
``--min-store-speedup`` (default 10) times faster *and* its
deterministic report must be byte-identical to the cold run's.

With ``--fleet`` the script additionally runs the **fleet-diagnosis
leg**: the demo fleet (``examples/fleet_demo.json`` unless
``--fleet-spec``) diagnosed cold against a fresh store, then warm,
then warm over a worker pool, appended as ``fleet`` -- the warm
rebuild must perform zero simulations and beat the cold run by
``--min-fleet-speedup`` (default 2), all three reports must be
byte-identical, and every injected fault must resolve to an
ambiguity class containing the true fault.

With ``--bist`` the script additionally runs the **BIST codegen
leg**: March C- and March SL compiled to ``BistProgram`` netlists
(compile wall time, repeated-compile byte-stability) and
trace-equivalence-verified per backend (verify wall time), appended
as ``bist``.

Output files keep a bounded **history**: each run appends a compact
timing record per benchmark key (workload, ``size=N``, ``width=W``,
``store``) and the per-key history is capped at the last
``--history-cap`` (default 20) records -- so the artifact keeps
enough trend to eyeball regressions without growing unboundedly,
while the gate's baseline lookup (the top-level current-run payload)
is untouched.

As a CI gate (``--gate``) the script fails when:

* the parallel campaign's reports differ from the serial ones in any
  way (this must never happen, on any machine), or
* the machine has at least ``--gate-cores`` cores (default 4) and the
  parallel run is slower than ``--min-speedup`` × serial (default
  1.0) on the chosen workload, or
* (with ``--sizes``) the sparse and dense kernels diverge at any size
  (never acceptable, on any machine), or
* (with ``--sizes``) the sparse kernel fails to beat the dense kernel
  by ``--min-sparse-speedup`` (default 1.0) at any size >=
  ``--sparse-gate-size`` (default 64).  Unlike the pool-speedup leg
  this applies on **any** core count: the win is algorithmic
  (O(bound cells) vs O(size) per element sweep), not parallelism; or
* (with ``--bitpar-sizes``) the bitpar and dense kernels diverge at
  any size (never acceptable, on any machine), or bitpar fails to
  beat dense by ``--min-bitpar-speedup`` (default 2.0) at any size >=
  ``--bitpar-gate-size`` (default 64) -- like the sparse leg this
  applies on any core count, since packing 64 placements per machine
  word is an algorithmic win; or
* (with ``--widths``) the dense and lane-sparse word kernels diverge
  at any width (never acceptable, on any machine); or
* (with ``--store``) the warm (all-hits) report differs from the cold
  run's in any byte (never acceptable), or the warm run is slower
  than ``--min-store-speedup`` × cold on **any** machine -- serving a
  hit is a key lookup plus JSON decode, so the win is algorithmic,
  not hardware; or
* (with ``--fleet``) the fleet reports diverge across cold/warm/
  parallel runs, the warm rebuild simulates anything, an injected
  fault escapes its ambiguity class, the fleet stops sharing
  dictionaries, or the warm rebuild misses its speedup floor; or
* (with ``--bist``) a compiled netlist is not byte-stable across
  repeated compiles, an interpreted BIST program is not
  trace-equivalent to the direct march run on any backend, or the
  verifier's interpreted-run report differs from its direct-run
  report in any byte.

Usage::

    python benchmarks/bench_campaign.py --workload smoke --gate \
        --sizes 3 64 256 --out BENCH_campaign.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.faults.lists import fault_list_1, fault_list_2
from repro.march.known import ALL_KNOWN
from repro.sim.campaign import CampaignResult, CoverageCampaign
from repro.store import QualificationStore


def _workload(name: str) -> Dict[str, object]:
    """Tests and fault lists for a named workload.

    * ``tiny`` -- three tests × Fault List #2; seconds even with pool
      start-up, used by the unit tests.
    * ``smoke`` -- every known test × a 300-fault slice of Fault List
      #1; the CI gate workload (~2 s serial).
    * ``full`` -- every known test × both paper fault lists; the
      multi-test campaign workload of the acceptance criteria.
    """
    tests = [km.test for km in ALL_KNOWN.values()]
    if name == "tiny":
        return {
            "tests": tests[:3],
            "fault_lists": {"FL#2": list(fault_list_2())},
        }
    if name == "smoke":
        return {
            "tests": tests,
            "fault_lists": {"FL#1[:300]": list(fault_list_1()[:300])},
        }
    if name == "full":
        return {
            "tests": tests,
            "fault_lists": {
                "FL#1": list(fault_list_1()),
                "FL#2": list(fault_list_2()),
            },
        }
    raise SystemExit(f"unknown workload {name!r}; "
                     f"choose from tiny, smoke, full")


def _sweep_workload() -> Dict[str, object]:
    """Tests and fault lists for the sparse scaling sweep.

    Every known march test against the full single-cell list plus an
    evenly spaced Fault List #1 slice (keeping two- and three-cell
    placements in play) -- small enough that the dense kernel stays
    affordable at memory size 256, big enough to exercise every fault
    family.
    """
    return {
        "tests": [km.test for km in ALL_KNOWN.values()],
        "fault_lists": {
            "FL#2": list(fault_list_2()),
            "FL#1[::20]": list(fault_list_1()[::20]),
        },
    }


def _word_workload() -> Dict[str, object]:
    """Tests and fault lists for the word-mode width sweep.

    Three known tests against Fault List #2: cost grows with
    width x backgrounds, so the word sweep keeps the fault list
    compact while still exercising every background pass and both
    placement families.
    """
    tests = [km.test for km in ALL_KNOWN.values()]
    return {
        "tests": tests[:3],
        "fault_lists": {"FL#2": list(fault_list_2())},
    }


def _run(
    workload: Dict[str, object],
    workers: int,
    memory_sizes: Sequence[int] = (3,),
    backend: str = "auto",
    width: int = 1,
    backgrounds=None,
    store=None,
) -> CampaignResult:
    campaign = CoverageCampaign(
        workload["tests"], workload["fault_lists"], workers=workers,
        memory_sizes=tuple(memory_sizes), backend=backend, width=width,
        backgrounds=backgrounds, store=store)
    return campaign.run()


def _timing(result: CampaignResult) -> Dict[str, object]:
    return {
        "workers": result.workers,
        "wall_seconds": result.wall_seconds,
        "contexts_simulated": result.contexts_simulated,
        "contexts_per_second": result.contexts_per_second,
    }


def run_benchmark(
    workload_name: str, workers: int, gate_cores: int, min_speedup: float
) -> Dict[str, object]:
    """Benchmark serial vs parallel; return the gate-ready payload."""
    workload = _workload(workload_name)
    serial = _run(workload, workers=1)
    parallel = _run(workload, workers=workers)
    serial_entries = [entry.to_dict() for entry in serial.entries]
    parallel_entries = [entry.to_dict() for entry in parallel.entries]
    identical = serial_entries == parallel_entries
    speedup = (
        serial.wall_seconds / parallel.wall_seconds
        if parallel.wall_seconds > 0 else 0.0)
    cores = os.cpu_count() or 1
    return {
        "workload": workload_name,
        "cpu_count": cores,
        "jobs": len(serial.entries),
        "serial": _timing(serial),
        "parallel": _timing(parallel),
        "speedup": speedup,
        "identical": identical,
        "speed_gate_applies": cores >= gate_cores,
        "min_speedup": min_speedup,
        "entries": serial_entries,
    }


def run_sparse_sweep(
    sizes: Sequence[int],
    sparse_gate_size: int,
    min_sparse_speedup: float,
) -> Dict[str, object]:
    """Dense-vs-sparse scaling sweep over *sizes*; gate-ready payload."""
    workload = _sweep_workload()
    entries = []
    for size in sizes:
        dense = _run(workload, workers=1, memory_sizes=(size,),
                     backend="dense")
        sparse = _run(workload, workers=1, memory_sizes=(size,),
                      backend="sparse")
        identical = (
            [entry.to_dict() for entry in dense.entries]
            == [entry.to_dict() for entry in sparse.entries])
        speedup = (
            dense.wall_seconds / sparse.wall_seconds
            if sparse.wall_seconds > 0 else float("inf"))
        entries.append({
            "memory_size": size,
            "dense": _timing(dense),
            "sparse": _timing(sparse),
            "speedup": speedup,
            "identical": identical,
            "speed_gate_applies": size >= sparse_gate_size,
        })
    return {
        "workload": "sweep",
        "jobs_per_size": (
            len(workload["tests"]) * len(workload["fault_lists"])),
        "sizes": list(sizes),
        "sparse_gate_size": sparse_gate_size,
        "min_sparse_speedup": min_sparse_speedup,
        "entries": entries,
    }


def run_bitpar_sweep(
    sizes: Sequence[int],
    bitpar_gate_size: int,
    min_bitpar_speedup: float,
) -> Dict[str, object]:
    """Dense-vs-bitpar scaling sweep over *sizes*; gate-ready payload.

    Identity is the acceptance-critical part -- the bit-parallel
    kernel packs up to 64 placements per machine word and must still
    reproduce every report byte-for-byte.  The speed leg applies at
    every size >= the gate size on any machine: lane packing is an
    algorithmic win, not a core-count one.
    """
    workload = _sweep_workload()
    entries = []
    for size in sizes:
        dense = _run(workload, workers=1, memory_sizes=(size,),
                     backend="dense")
        bitpar = _run(workload, workers=1, memory_sizes=(size,),
                      backend="bitpar")
        identical = (
            [entry.to_dict() for entry in dense.entries]
            == [entry.to_dict() for entry in bitpar.entries])
        speedup = (
            dense.wall_seconds / bitpar.wall_seconds
            if bitpar.wall_seconds > 0 else float("inf"))
        entries.append({
            "memory_size": size,
            "dense": _timing(dense),
            "bitpar": _timing(bitpar),
            "speedup": speedup,
            "identical": identical,
            "speed_gate_applies": size >= bitpar_gate_size,
        })
    return {
        "jobs_per_size": (
            len(workload["tests"]) * len(workload["fault_lists"])),
        "sizes": list(sizes),
        "bitpar_gate_size": bitpar_gate_size,
        "min_bitpar_speedup": min_bitpar_speedup,
        "entries": entries,
    }


def run_width_sweep(widths: Sequence[int]) -> Dict[str, object]:
    """Word-mode sweep: dense vs lane-sparse per width, serially.

    The identity verdict is the acceptance-critical part (the two word
    kernels must agree byte-for-byte at every width); the timings make
    word-mode throughput visible in ``BENCH_campaign.json`` so
    regressions show up in the uploaded artifact history.
    """
    workload = _word_workload()
    entries = []
    for width in widths:
        # backgrounds="standard" keeps width 1 on the *word* kernels
        # (a 1-bit word memory under background (0,)) -- otherwise the
        # bit path would run and the width-1 leg would gate nothing new.
        dense = _run(workload, workers=1, memory_sizes=(8,),
                     backend="dense", width=width,
                     backgrounds="standard")
        sparse = _run(workload, workers=1, memory_sizes=(8,),
                      backend="sparse", width=width,
                      backgrounds="standard")
        identical = (
            [entry.to_dict() for entry in dense.entries]
            == [entry.to_dict() for entry in sparse.entries])
        speedup = (
            dense.wall_seconds / sparse.wall_seconds
            if sparse.wall_seconds > 0 else float("inf"))
        entries.append({
            "width": width,
            "dense": _timing(dense),
            "sparse": _timing(sparse),
            "speedup": speedup,
            "identical": identical,
        })
    return {
        "jobs_per_width": (
            len(workload["tests"]) * len(workload["fault_lists"])),
        "widths": list(widths),
        "entries": entries,
    }


def run_store_leg(
    workload_name: str,
    min_store_speedup: float,
    sizes: Sequence[int] = (3,),
    widths: Sequence[int] = (1,),
    store_path: Optional[str] = None,
) -> Dict[str, object]:
    """Cold-vs-warm qualification-store benchmark, gate-ready payload.

    Runs the serial workload once against a fresh store (cold: every
    job simulates and is recorded) and once more against the same
    store (warm: every job is a content-address hit, zero
    simulation).  The warm report must be byte-identical to the cold
    one and the wall-time ratio is the acceptance-criterion speedup.
    ``sizes``/``widths`` > 1 entry sweep the same store across
    geometries, mirroring the nightly CI workload; *store_path*
    defaults to an in-memory store (the CI artifact flow passes a
    file).
    """
    workload = _workload(workload_name)
    word_workload = _word_workload()
    if store_path and os.path.exists(store_path):
        # The leg's contract is a genuinely cold first pass; a
        # leftover store from a previous run (same workspace, reused
        # runner) would silently serve it warm and false-fail the
        # >= min_store_speedup gate.
        os.remove(store_path)
    store = QualificationStore(store_path or ":memory:")
    try:
        entries = []
        for width in widths:
            for size in sizes:
                kwargs: Dict[str, object] = {
                    "memory_sizes": (size,), "width": width}
                if width > 1:
                    # Word mode multiplies cost by width x backgrounds;
                    # the compact word workload (same as the width
                    # sweep) keeps the cold leg affordable.
                    kwargs["backgrounds"] = "standard"
                load = workload if width == 1 else word_workload
                cold = _run(load, workers=1, store=store, **kwargs)
                warm = _run(load, workers=1, store=store, **kwargs)
                identical = cold.report_json() == warm.report_json()
                speedup = (
                    cold.wall_seconds / warm.wall_seconds
                    if warm.wall_seconds > 0 else float("inf"))
                entries.append({
                    "memory_size": size,
                    "width": width,
                    "cold": _timing(cold),
                    "warm": _timing(warm),
                    "cold_store": {
                        "hits": cold.store_hits,
                        "misses": cold.store_misses},
                    "warm_store": {
                        "hits": warm.store_hits,
                        "misses": warm.store_misses},
                    "speedup": speedup,
                    "identical": identical,
                })
        return {
            "workload": workload_name,
            "store_rows": len(store),
            "store_stats": store.stats(),
            "min_store_speedup": min_store_speedup,
            "entries": entries,
        }
    finally:
        store.close()


def _dictionary_workload() -> List[Dict[str, object]]:
    """(test, fault list) cells for the fault-dictionary leg.

    Two anchor tests against Fault List #2 and a stratified Fault
    List #1 slice at memory size 64: big enough that the sparse
    kernel's algorithmic win and the store's decode-only warm path
    are both visible, small enough for the CI gate.  The FL#1 slice
    starts past the single-cell prefix (FL#1[:24] *is* FL#2, and
    signature rows are keyed per fault), so the leg's cold builds
    share no rows across cells and stay genuinely cold.
    """
    fl2 = list(fault_list_2())
    multicell = list(fault_list_1())[len(fl2):]
    step = max(1, len(multicell) // 120)
    return [
        {"test": ALL_KNOWN[name].test, "label": label,
         "faults": faults, "size": 64}
        for name in ("March C-", "March SL")
        for label, faults in (
            ("FL#2", fl2),
            ("FL#1[24:][s120]", multicell[::step][:120]),
        )
    ]


def run_dictionary_leg(
    min_dictionary_speedup: float,
    store_path: Optional[str] = None,
) -> Dict[str, object]:
    """Fault-dictionary benchmark: backend identity + warm store.

    For each workload cell the dictionary is built four times: dense
    and sparse (their deterministic JSON must be byte-identical),
    then cold and warm against a qualification store (the warm
    rebuild must perform **zero** simulations, produce byte-identical
    JSON, and be at least *min_dictionary_speedup* x faster -- the
    warm path is a key lookup plus JSON decode, so the win is
    algorithmic, not hardware).
    """
    from time import perf_counter

    from repro.diagnosis import build_dictionary

    if store_path and os.path.exists(store_path):
        os.remove(store_path)
    store = QualificationStore(store_path or ":memory:")
    try:
        entries = []
        for cell in _dictionary_workload():
            test, faults = cell["test"], cell["faults"]
            size = cell["size"]
            timings = {}
            builds = {}
            for leg, kwargs in (
                ("dense", {"backend": "dense"}),
                ("sparse", {"backend": "sparse"}),
                ("cold", {"store": store}),
                ("warm", {"store": store}),
            ):
                start = perf_counter()
                builds[leg] = build_dictionary(
                    test, faults, memory_size=size, **kwargs)
                timings[leg] = perf_counter() - start
            backend_identical = (
                builds["dense"].to_json() == builds["sparse"].to_json())
            store_identical = (
                builds["cold"].to_json() == builds["warm"].to_json())
            speedup = (
                timings["cold"] / timings["warm"]
                if timings["warm"] > 0 else float("inf"))
            entries.append({
                "test": test.name,
                "fault_list": cell["label"],
                "memory_size": size,
                "placements": len(builds["cold"]),
                "wall_seconds": {
                    leg: timings[leg] for leg in timings},
                "backend_identical": backend_identical,
                "store_identical": store_identical,
                "cold_store_hits": builds["cold"].store_hits,
                "cold_simulated_runs": builds["cold"].simulated_runs,
                "warm_simulated_runs": builds["warm"].simulated_runs,
                "speedup": speedup,
            })
        return {
            "store_rows": len(store),
            "min_dictionary_speedup": min_dictionary_speedup,
            "entries": entries,
        }
    finally:
        store.close()


DEFAULT_FLEET_SPEC = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "examples",
    "fleet_demo.json")


def run_fleet_leg(
    min_fleet_speedup: float,
    spec_path: Optional[str] = None,
    store_path: Optional[str] = None,
    workers: int = 4,
) -> Dict[str, object]:
    """Fleet-diagnosis benchmark: shared dictionaries + warm rebuild.

    Diagnoses the demo fleet three times: cold against a fresh store,
    warm against the now-populated store (must perform **zero**
    simulations and be at least *min_fleet_speedup* x faster), and
    warm again over *workers* pool workers.  All three deterministic
    fleet reports must be byte-identical, every injected fault must
    resolve to an ambiguity class containing the true fault, and the
    fleet must exercise dictionary sharing (fewer distinct geometries
    than instances -- otherwise the leg measures nothing fleet-y).
    """
    from time import perf_counter

    from repro.cli import _fault_list
    from repro.diagnosis import diagnose_fleet, load_fleet_spec
    from repro.march.known import known_march

    spec = load_fleet_spec(spec_path or DEFAULT_FLEET_SPEC)
    test = known_march(spec.march or "March C-").test
    faults = _fault_list(spec.fault_list or "2")
    if store_path and os.path.exists(store_path):
        os.remove(store_path)
    store = QualificationStore(store_path or ":memory:")
    try:
        timings = {}
        reports = {}
        for leg, kwargs in (
            ("cold", {}),
            ("warm", {}),
            ("parallel", {"workers": workers}),
        ):
            start = perf_counter()
            reports[leg] = diagnose_fleet(
                test, faults, spec, store=store, **kwargs)
            timings[leg] = perf_counter() - start
        jsons = {leg: report.report_json()
                 for leg, report in reports.items()}
        speedup = (timings["cold"] / timings["warm"]
                   if timings["warm"] > 0 else float("inf"))
        cold = reports["cold"]
        return {
            "fleet": spec.name,
            "test": test.name,
            "instances": len(spec.instances),
            "failing_instances": len(spec.failing_instances),
            "distinct_geometries": len(cold.geometry_reports),
            "store_rows": len(store),
            "min_fleet_speedup": min_fleet_speedup,
            "workers": workers,
            "wall_seconds": timings,
            "identical": (jsons["cold"] == jsons["warm"]
                          == jsons["parallel"]),
            "all_diagnosed": cold.all_diagnosed,
            "fleet_resolution": cold.fleet_resolution,
            "cold_simulated_runs": cold.simulated_runs,
            "warm_simulated_runs": reports["warm"].simulated_runs,
            "speedup": speedup,
        }
    finally:
        store.close()


def run_bist_leg(
    tests: Sequence[str] = ("March C-", "March SL"),
    backends: Sequence[str] = ("dense", "bitpar"),
    fault_list: str = "2",
    memory_size: int = 3,
) -> Dict[str, object]:
    """BIST codegen benchmark: compile + verify wall time, hard gates.

    Compiles each march twice (the netlist must be byte-stable) and
    times a full trace-equivalence verification per backend.  The
    gate is correctness-shaped rather than speed-shaped: any netlist
    instability, any non-equivalent verification, or any divergence
    between the verifier's direct-run report and its interpreted-run
    report fails the run.
    """
    from time import perf_counter

    from repro.analysis.bist import compile_march
    from repro.cli import _fault_list
    from repro.march.known import known_march
    from repro.sim.bist import verify_program

    faults = _fault_list(fault_list)
    entries = []
    for name in tests:
        test = known_march(name).test
        start = perf_counter()
        program = compile_march(test)
        compile_seconds = perf_counter() - start
        stable = (compile_march(test).to_json() == program.to_json()
                  and compile_march(test).netlist_sha256()
                  == program.netlist_sha256())
        verify = {}
        for backend in backends:
            start = perf_counter()
            verification = verify_program(
                program, test, faults, memory_size=memory_size,
                backend=backend)
            verify[backend] = {
                "wall_seconds": perf_counter() - start,
                "equivalent": verification.equivalent,
                "simulated_runs": verification.simulated_runs,
                "reports_identical": (verification.direct_report
                                      == verification.interpreted_report),
            }
        entries.append({
            "test": name,
            "netlist_sha256": program.netlist_sha256(),
            "netlist_stable": stable,
            "states": len(program.states),
            "compile_wall_seconds": compile_seconds,
            "verify": verify,
        })
    return {
        "fault_list": fault_list,
        "memory_size": memory_size,
        "entries": entries,
    }


def _bare_pool_run(workload: Dict[str, object], workers: int):
    """One bare-pool campaign pass: (entry dicts, wall seconds).

    Replicates the pre-supervisor fan-out -- a plain
    ``ProcessPoolExecutor`` submitting fault chunks with no timeouts,
    retries or checkpointing -- as the floor the supervised path's
    bookkeeping overhead is measured against.
    """
    from concurrent.futures import ProcessPoolExecutor
    from time import perf_counter

    from repro.sim.batch import auto_chunk_size, chunked
    from repro.sim.campaign import CampaignEntry
    from repro.sim.coverage import (
        qualify_outcomes,
        report_from_outcomes,
    )

    campaign = CoverageCampaign(
        workload["tests"], workload["fault_lists"], workers=workers)
    start = perf_counter()
    entries = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for job in campaign.jobs():
            faults = campaign.fault_lists[job.fault_list]
            size = auto_chunk_size(len(faults), workers)
            futures = [
                pool.submit(
                    qualify_outcomes, job.test, chunk,
                    job.memory_size, campaign.exhaustive_limit,
                    job.lf3_layout, campaign.backend, job.width,
                    job.backgrounds)
                for chunk in chunked(faults, size)
            ]
            outcomes: List[object] = []
            contexts = 0
            for future in futures:
                chunk_outcomes, chunk_contexts = future.result()
                outcomes.extend(chunk_outcomes)
                contexts += chunk_contexts
            entries.append(CampaignEntry(job, report_from_outcomes(
                job.test.name, faults, outcomes, contexts)))
    wall = perf_counter() - start
    return [entry.to_dict() for entry in entries], wall


def run_chaos_overhead_leg(
    workload_name: str,
    workers: int,
    max_overhead: float,
    repeats: int = 2,
) -> Dict[str, object]:
    """Supervised-vs-bare-pool overhead benchmark, gate-ready payload.

    The supervisor's recovery ladder (deadline tracking, retry
    bookkeeping, in-order stitching) runs in the parent while workers
    simulate, so a clean run must cost within ``max_overhead`` of the
    bare pool it replaced.  Both legs take the best of *repeats* runs
    to damp scheduler noise, and the supervised entries must stay
    byte-identical to the bare pool's.
    """
    workload = _workload(workload_name)
    bare_entries = None
    bare_wall = float("inf")
    for _ in range(repeats):
        entries, wall = _bare_pool_run(workload, workers)
        bare_wall = min(bare_wall, wall)
        bare_entries = entries
    supervised_entries = None
    supervised_wall = float("inf")
    clean = True
    for _ in range(repeats):
        result = _run(workload, workers=workers)
        supervised_wall = min(supervised_wall, result.wall_seconds)
        supervised_entries = [
            entry.to_dict() for entry in result.entries]
        clean = clean and not result.failure_report
    overhead = (
        supervised_wall / bare_wall - 1.0
        if bare_wall > 0 else 0.0)
    return {
        "workload": workload_name,
        "workers": workers,
        "repeats": repeats,
        "bare_wall_seconds": bare_wall,
        "supervised_wall_seconds": supervised_wall,
        "overhead": overhead,
        "max_overhead": max_overhead,
        "identical": bare_entries == supervised_entries,
        "clean": clean,
    }


def _history_records(payload: Dict[str, object]) -> Dict[str, dict]:
    """Compact per-key timing records of one benchmark run."""
    records: Dict[str, dict] = {}
    if "serial" in payload:  # main campaign payload
        records[f"workload={payload['workload']}"] = {
            "serial_wall_seconds":
                payload["serial"]["wall_seconds"],
            "parallel_wall_seconds":
                payload["parallel"]["wall_seconds"],
            "speedup": payload["speedup"],
            "identical": payload["identical"],
        }
        for entry in payload.get("width_sweep", {}).get("entries", ()):
            records[f"width={entry['width']}"] = {
                "dense_wall_seconds": entry["dense"]["wall_seconds"],
                "sparse_wall_seconds": entry["sparse"]["wall_seconds"],
                "speedup": entry["speedup"],
                "identical": entry["identical"],
            }
        for entry in payload.get("bitpar", {}).get("entries", ()):
            records[f"bitpar size={entry['memory_size']}"] = {
                "dense_wall_seconds": entry["dense"]["wall_seconds"],
                "bitpar_wall_seconds": entry["bitpar"]["wall_seconds"],
                "speedup": entry["speedup"],
                "identical": entry["identical"],
            }
        for entry in payload.get("store", {}).get("entries", ()):
            records[
                f"store size={entry['memory_size']} "
                f"width={entry['width']}"
            ] = {
                "cold_wall_seconds": entry["cold"]["wall_seconds"],
                "warm_wall_seconds": entry["warm"]["wall_seconds"],
                "speedup": entry["speedup"],
                "identical": entry["identical"],
            }
        overhead_leg = payload.get("chaos_overhead")
        if overhead_leg:
            records["chaos-overhead"] = {
                "bare_wall_seconds":
                    overhead_leg["bare_wall_seconds"],
                "supervised_wall_seconds":
                    overhead_leg["supervised_wall_seconds"],
                "overhead": overhead_leg["overhead"],
                "identical": overhead_leg["identical"],
            }
        for entry in payload.get("dictionary", {}).get("entries", ()):
            records[
                f"dictionary {entry['test']} {entry['fault_list']}"
            ] = {
                "cold_wall_seconds":
                    entry["wall_seconds"]["cold"],
                "warm_wall_seconds":
                    entry["wall_seconds"]["warm"],
                "speedup": entry["speedup"],
                "backend_identical": entry["backend_identical"],
                "store_identical": entry["store_identical"],
            }
        fleet_leg = payload.get("fleet")
        if fleet_leg:
            records[f"fleet {fleet_leg['fleet']}"] = {
                "cold_wall_seconds":
                    fleet_leg["wall_seconds"]["cold"],
                "warm_wall_seconds":
                    fleet_leg["wall_seconds"]["warm"],
                "speedup": fleet_leg["speedup"],
                "identical": fleet_leg["identical"],
                "all_diagnosed": fleet_leg["all_diagnosed"],
            }
        for entry in payload.get("bist", {}).get("entries", ()):
            records[f"bist {entry['test']}"] = {
                "compile_wall_seconds":
                    entry["compile_wall_seconds"],
                "verify_wall_seconds": {
                    backend: leg["wall_seconds"]
                    for backend, leg in entry["verify"].items()},
                "netlist_stable": entry["netlist_stable"],
                "equivalent": all(
                    leg["equivalent"]
                    for leg in entry["verify"].values()),
            }
    else:  # sparse-sweep payload
        for entry in payload.get("entries", ()):
            records[f"size={entry['memory_size']}"] = {
                "dense_wall_seconds": entry["dense"]["wall_seconds"],
                "sparse_wall_seconds": entry["sparse"]["wall_seconds"],
                "speedup": entry["speedup"],
                "identical": entry["identical"],
            }
    return records


def write_with_history(
    path: str, payload: Dict[str, object], cap: int
) -> None:
    """Write *payload* to *path*, rotating a bounded history.

    The previous file's ``history`` map (if any) is carried forward,
    this run's compact records are appended per key, and every key's
    list is capped to its last *cap* entries -- the file records a
    trend without growing unboundedly.  The top-level keys the
    regression gate reads always describe the *current* run only.
    """
    history: Dict[str, List[dict]] = {}
    try:
        with open(path) as handle:
            previous = json.load(handle)
        if isinstance(previous, dict):
            candidate = previous.get("history", {})
            if isinstance(candidate, dict):
                history = {
                    key: list(entries)
                    for key, entries in candidate.items()
                    if isinstance(entries, list)
                }
    except (OSError, ValueError):
        pass
    for key, record in _history_records(payload).items():
        history.setdefault(key, []).append(record)
        history[key] = history[key][-cap:]
    payload = dict(payload)
    payload["history"] = history
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def gate(payload: Dict[str, object]) -> List[str]:
    """Regression-gate verdict: a list of failure messages (empty=pass)."""
    failures = []
    if not payload["identical"]:
        failures.append(
            "serial and parallel campaign results DIVERGE -- the "
            "process-pool fan-out is broken")
    if payload["speed_gate_applies"] \
            and payload["speedup"] < payload["min_speedup"]:
        failures.append(
            f"parallel campaign is slower than the gate allows: "
            f"speedup {payload['speedup']:.2f}x < "
            f"{payload['min_speedup']:.2f}x on {payload['cpu_count']} "
            f"cores")
    for entry in payload.get("width_sweep", {}).get("entries", ()):
        if not entry["identical"]:
            failures.append(
                f"dense and lane-sparse word kernels DIVERGE at "
                f"width {entry['width']} -- the word sparse kernel "
                f"is not exact")
    bitpar_leg = payload.get("bitpar")
    if bitpar_leg:
        for entry in bitpar_leg["entries"]:
            size = entry["memory_size"]
            if not entry["identical"]:
                failures.append(
                    f"bitpar and dense kernels DIVERGE at memory "
                    f"size {size} -- the bit-parallel kernel is not "
                    f"exact")
            if entry["speed_gate_applies"] and \
                    entry["speedup"] < bitpar_leg["min_bitpar_speedup"]:
                failures.append(
                    f"bitpar kernel fails to beat dense at memory "
                    f"size {size}: speedup {entry['speedup']:.2f}x < "
                    f"{bitpar_leg['min_bitpar_speedup']:.2f}x (lane "
                    f"packing is algorithmic, independent of core "
                    f"count)")
    store_leg = payload.get("store")
    if store_leg:
        for entry in store_leg["entries"]:
            cell = (f"size {entry['memory_size']} "
                    f"width {entry['width']}")
            if not entry["identical"]:
                failures.append(
                    f"warm (store-hit) campaign report DIVERGES from "
                    f"the cold run at {cell} -- the store is not "
                    f"serving byte-identical results")
            if entry["cold_store"]["hits"]:
                failures.append(
                    f"cold store run served "
                    f"{entry['cold_store']['hits']} hit(s) at "
                    f"{cell} -- the store was not fresh, the "
                    f"speedup baseline is meaningless")
            if entry["warm_store"]["misses"]:
                failures.append(
                    f"warm store run still missed "
                    f"{entry['warm_store']['misses']} job(s) at "
                    f"{cell} -- content addressing is unstable "
                    f"across runs")
            if entry["speedup"] < store_leg["min_store_speedup"]:
                failures.append(
                    f"warm store run fails the speedup gate at "
                    f"{cell}: {entry['speedup']:.1f}x < "
                    f"{store_leg['min_store_speedup']:.1f}x (a hit "
                    f"is a key lookup, the win must be algorithmic)")
    overhead_leg = payload.get("chaos_overhead")
    if overhead_leg:
        if not overhead_leg["identical"]:
            failures.append(
                "supervised campaign entries DIVERGE from the bare "
                "process pool's -- the recovery ladder changed a "
                "clean run's result")
        if not overhead_leg["clean"]:
            failures.append(
                "supervised campaign recorded failure events on an "
                "undisturbed run -- the supervisor is striking "
                "healthy chunks")
        if overhead_leg["overhead"] > overhead_leg["max_overhead"]:
            failures.append(
                f"supervisor overhead gate: clean supervised run is "
                f"{overhead_leg['overhead']:+.1%} vs the bare pool "
                f"(allowed {overhead_leg['max_overhead']:.1%}); the "
                f"ladder's bookkeeping must stay off the hot path")
    dictionary_leg = payload.get("dictionary")
    if dictionary_leg:
        minimum = dictionary_leg["min_dictionary_speedup"]
        for entry in dictionary_leg["entries"]:
            cell = f"{entry['test']} vs {entry['fault_list']}"
            if not entry["backend_identical"]:
                failures.append(
                    f"dense and sparse fault dictionaries DIVERGE "
                    f"for {cell} -- detection signatures are not "
                    f"backend-identical")
            if not entry["store_identical"]:
                failures.append(
                    f"warm-store dictionary rebuild DIVERGES from "
                    f"the cold build for {cell}")
            if entry["cold_store_hits"]:
                failures.append(
                    f"cold dictionary build for {cell} served "
                    f"{entry['cold_store_hits']} store hit(s) -- "
                    f"the workload cells overlap, the speedup "
                    f"baseline is not cold")
            if entry["warm_simulated_runs"]:
                failures.append(
                    f"warm dictionary rebuild for {cell} still "
                    f"simulated {entry['warm_simulated_runs']} "
                    f"run(s) -- the store must serve every "
                    f"signature row")
            if entry["speedup"] < minimum:
                failures.append(
                    f"warm dictionary rebuild fails the speedup "
                    f"gate for {cell}: {entry['speedup']:.1f}x < "
                    f"{minimum:.1f}x")
    fleet_leg = payload.get("fleet")
    if fleet_leg:
        name = fleet_leg["fleet"]
        if not fleet_leg["identical"]:
            failures.append(
                f"fleet reports DIVERGE across cold/warm/parallel "
                f"runs for {name} -- the fleet report must be "
                f"byte-identical regardless of store state and "
                f"worker count")
        if not fleet_leg["all_diagnosed"]:
            failures.append(
                f"fleet {name}: an injected fault did not resolve "
                f"to an ambiguity class containing the true fault")
        if fleet_leg["warm_simulated_runs"]:
            failures.append(
                f"warm fleet rebuild for {name} still simulated "
                f"{fleet_leg['warm_simulated_runs']} run(s) -- the "
                f"shared store must serve every signature row")
        if fleet_leg["distinct_geometries"] >= fleet_leg["instances"]:
            failures.append(
                f"fleet {name} has no geometry sharing "
                f"({fleet_leg['distinct_geometries']} dictionaries "
                f"for {fleet_leg['instances']} instances) -- the "
                f"leg no longer exercises dictionary reuse")
        if fleet_leg["speedup"] < fleet_leg["min_fleet_speedup"]:
            failures.append(
                f"warm fleet rebuild fails the speedup gate for "
                f"{name}: {fleet_leg['speedup']:.1f}x < "
                f"{fleet_leg['min_fleet_speedup']:.1f}x")
    bist_leg = payload.get("bist")
    if bist_leg:
        for entry in bist_leg["entries"]:
            name = entry["test"]
            if not entry["netlist_stable"]:
                failures.append(
                    f"bist netlist for {name} is NOT byte-stable "
                    f"across repeated compiles -- the netlist must "
                    f"be a deterministic content-addressed artifact")
            for backend, leg in entry["verify"].items():
                if not leg["equivalent"]:
                    failures.append(
                        f"bist program for {name} is NOT "
                        f"trace-equivalent to the direct march run "
                        f"on backend {backend}")
                if not leg["reports_identical"]:
                    failures.append(
                        f"bist verification for {name} on backend "
                        f"{backend}: interpreted-run report differs "
                        f"from the direct-run report")
    return failures


def sparse_gate(payload: Dict[str, object]) -> List[str]:
    """Sweep-gate verdict: divergence always fails; the speed leg
    applies at every size >= the gate size, on any core count."""
    failures = []
    for entry in payload["entries"]:
        size = entry["memory_size"]
        if not entry["identical"]:
            failures.append(
                f"sparse and dense kernels DIVERGE at memory size "
                f"{size} -- the sparse kernel is not exact")
        if entry["speed_gate_applies"] \
                and entry["speedup"] < payload["min_sparse_speedup"]:
            failures.append(
                f"sparse kernel fails to beat dense at memory size "
                f"{size}: speedup {entry['speedup']:.2f}x < "
                f"{payload['min_sparse_speedup']:.2f}x (the win must "
                f"be algorithmic, independent of core count)")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workload", default="smoke",
                        choices=("tiny", "smoke", "full"))
    parser.add_argument("--workers", type=int,
                        default=max(2, os.cpu_count() or 1),
                        help="parallel worker count (default: all cores, "
                             "minimum 2)")
    parser.add_argument("--out", default="BENCH_campaign.json",
                        help="output JSON path")
    parser.add_argument("--gate", action="store_true",
                        help="exit non-zero on divergence or regression")
    parser.add_argument("--gate-cores", type=int, default=4,
                        help="apply the speed leg of the gate only on "
                             "machines with at least this many cores")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="required parallel-vs-serial speedup when "
                             "the speed gate applies")
    parser.add_argument("--sizes", nargs="+", type=int, metavar="N",
                        help="also run the sparse-vs-dense kernel "
                             "scaling sweep at these memory sizes "
                             "(e.g. --sizes 3 64 256), writing "
                             "--sparse-out")
    parser.add_argument("--sparse-out", default="BENCH_sparse.json",
                        help="output JSON path for the scaling sweep")
    parser.add_argument("--sparse-gate-size", type=int, default=64,
                        help="apply the sparse speed leg at every "
                             "swept size >= this (on any core count)")
    parser.add_argument("--min-sparse-speedup", type=float, default=1.0,
                        help="required sparse-vs-dense speedup at "
                             "gated sizes")
    parser.add_argument("--bitpar-sizes", nargs="+", type=int,
                        metavar="N",
                        help="also run the bitpar-vs-dense scaling "
                             "sweep at these memory sizes, appended "
                             "to the main report as 'bitpar'")
    parser.add_argument("--bitpar-gate-size", type=int, default=64,
                        help="apply the bitpar speed leg at every "
                             "swept size >= this (on any core count)")
    parser.add_argument("--min-bitpar-speedup", type=float, default=2.0,
                        help="required bitpar-vs-dense speedup at "
                             "gated sizes")
    parser.add_argument("--widths", nargs="+", type=int, metavar="W",
                        help="also run the word-mode sweep at these "
                             "word widths (e.g. --widths 1 4 8), "
                             "appended to the main report as "
                             "'width_sweep'")
    parser.add_argument("--store", action="store_true",
                        help="also run the qualification-store leg: "
                             "cold (fresh store) vs warm (all hits) "
                             "over --sizes x --widths, appended to "
                             "the main report as 'store'")
    parser.add_argument("--store-path", metavar="PATH",
                        help="back the store leg with this SQLite "
                             "file (default: in-memory); CI uploads "
                             "it as an artifact")
    parser.add_argument("--min-store-speedup", type=float, default=10.0,
                        help="required warm-vs-cold speedup for the "
                             "store leg (applies on any machine: a "
                             "hit never simulates)")
    parser.add_argument("--dictionary", action="store_true",
                        help="also run the fault-dictionary leg: "
                             "dense==sparse signature identity plus "
                             "cold-vs-warm store rebuild (warm must "
                             "simulate nothing), appended to the "
                             "main report as 'dictionary'")
    parser.add_argument("--dictionary-store-path", metavar="PATH",
                        help="back the dictionary leg with this "
                             "SQLite file (default: in-memory)")
    parser.add_argument("--min-dictionary-speedup", type=float,
                        default=2.0,
                        help="required warm-vs-cold speedup for the "
                             "dictionary leg (applies on any "
                             "machine)")
    parser.add_argument("--fleet", action="store_true",
                        help="also run the fleet-diagnosis leg: "
                             "cold vs warm vs parallel diagnosis of "
                             "the demo fleet (warm must simulate "
                             "nothing, all three reports "
                             "byte-identical), appended to the main "
                             "report as 'fleet'")
    parser.add_argument("--fleet-spec", metavar="PATH",
                        help="fleet spec file for the fleet leg "
                             "(default: examples/fleet_demo.json)")
    parser.add_argument("--fleet-store-path", metavar="PATH",
                        help="back the fleet leg with this SQLite "
                             "file (default: in-memory)")
    parser.add_argument("--min-fleet-speedup", type=float,
                        default=2.0,
                        help="required warm-vs-cold speedup for the "
                             "fleet leg (applies on any machine)")
    parser.add_argument("--bist", action="store_true",
                        help="also run the BIST codegen leg: compile "
                             "+ trace-equivalence verification wall "
                             "time per backend, gated on netlist "
                             "byte-stability and interpreted-vs-"
                             "direct report identity, appended to "
                             "the main report as 'bist'")
    parser.add_argument("--chaos-overhead", action="store_true",
                        help="also run the supervisor-overhead leg: "
                             "a clean supervised campaign vs the "
                             "bare process pool it replaced, "
                             "appended to the main report as "
                             "'chaos_overhead'")
    parser.add_argument("--max-chaos-overhead", type=float,
                        default=0.05,
                        help="maximum supervised-vs-bare overhead "
                             "the gate allows on a clean run "
                             "(fraction, default 0.05 = 5%%)")
    parser.add_argument("--chaos-overhead-repeats", type=int,
                        default=2,
                        help="take the best of this many runs per "
                             "leg to damp scheduler noise")
    parser.add_argument("--history-cap", type=int, default=20,
                        help="keep at most this many history records "
                             "per benchmark key in the output files")
    args = parser.parse_args(argv)

    payload = run_benchmark(
        args.workload, args.workers, args.gate_cores, args.min_speedup)
    if args.bitpar_sizes:
        payload["bitpar"] = run_bitpar_sweep(
            args.bitpar_sizes, args.bitpar_gate_size,
            args.min_bitpar_speedup)
    if args.widths:
        payload["width_sweep"] = run_width_sweep(args.widths)
    if args.store:
        payload["store"] = run_store_leg(
            args.workload, args.min_store_speedup,
            sizes=tuple(args.sizes or (3,)),
            widths=tuple(args.widths or (1,)),
            store_path=args.store_path)
    if args.chaos_overhead:
        payload["chaos_overhead"] = run_chaos_overhead_leg(
            args.workload, args.workers, args.max_chaos_overhead,
            repeats=args.chaos_overhead_repeats)
    if args.dictionary:
        payload["dictionary"] = run_dictionary_leg(
            args.min_dictionary_speedup,
            store_path=args.dictionary_store_path)
    if args.fleet:
        payload["fleet"] = run_fleet_leg(
            args.min_fleet_speedup,
            spec_path=args.fleet_spec,
            store_path=args.fleet_store_path)
    if args.bist:
        payload["bist"] = run_bist_leg()
    write_with_history(args.out, payload, args.history_cap)

    print(f"workload={payload['workload']} jobs={payload['jobs']} "
          f"cores={payload['cpu_count']}")
    for leg in ("serial", "parallel"):
        timing = payload[leg]
        print(f"  {leg:8s} workers={timing['workers']} "
              f"wall={timing['wall_seconds']:.2f}s "
              f"contexts/s={timing['contexts_per_second']:,.0f}")
    print(f"  speedup={payload['speedup']:.2f}x "
          f"identical={payload['identical']}")
    if payload["speed_gate_applies"]:
        print(f"  speed gate: APPLIES "
              f"(requires >= {payload['min_speedup']:.2f}x "
              f"on {payload['cpu_count']} cores)")
    else:
        print(f"  speed gate: SKIPPED "
              f"({payload['cpu_count']} cores < {args.gate_cores}; "
              f"identity check still enforced)")
    if args.bitpar_sizes:
        leg = payload["bitpar"]
        print(f"bitpar kernel sweep "
              f"({leg['jobs_per_size']} jobs per size):")
        for entry in leg["entries"]:
            gated = "gated" if entry["speed_gate_applies"] else "info"
            print(f"  n={entry['memory_size']:<5d} "
                  f"dense={entry['dense']['wall_seconds']:.2f}s "
                  f"bitpar={entry['bitpar']['wall_seconds']:.2f}s "
                  f"speedup={entry['speedup']:.1f}x "
                  f"identical={entry['identical']} [{gated}]")
    if args.widths:
        sweep = payload["width_sweep"]
        print(f"word-mode width sweep "
              f"({sweep['jobs_per_width']} jobs per width):")
        for entry in sweep["entries"]:
            print(f"  w={entry['width']:<3d} "
                  f"dense={entry['dense']['wall_seconds']:.2f}s "
                  f"sparse={entry['sparse']['wall_seconds']:.2f}s "
                  f"speedup={entry['speedup']:.1f}x "
                  f"identical={entry['identical']}")
    if args.store:
        leg = payload["store"]
        print(f"qualification store leg "
              f"({leg['store_rows']} rows stored):")
        for entry in leg["entries"]:
            print(f"  n={entry['memory_size']:<5d} "
                  f"w={entry['width']:<3d} "
                  f"cold={entry['cold']['wall_seconds']:.2f}s "
                  f"warm={entry['warm']['wall_seconds']:.3f}s "
                  f"speedup={entry['speedup']:.1f}x "
                  f"identical={entry['identical']}")
    if args.chaos_overhead:
        leg = payload["chaos_overhead"]
        print(f"supervisor overhead leg "
              f"(best of {leg['repeats']}, "
              f"workers={leg['workers']}):")
        print(f"  bare={leg['bare_wall_seconds']:.2f}s "
              f"supervised={leg['supervised_wall_seconds']:.2f}s "
              f"overhead={leg['overhead']:+.1%} "
              f"(max {leg['max_overhead']:.0%}) "
              f"identical={leg['identical']} clean={leg['clean']}")
    if args.dictionary:
        leg = payload["dictionary"]
        print(f"fault dictionary leg "
              f"({leg['store_rows']} signature rows stored):")
        for entry in leg["entries"]:
            walls = entry["wall_seconds"]
            print(f"  {entry['test']:<10s} {entry['fault_list']:<11s} "
                  f"dense={walls['dense']:.2f}s "
                  f"sparse={walls['sparse']:.2f}s "
                  f"cold={walls['cold']:.2f}s "
                  f"warm={walls['warm']:.3f}s "
                  f"speedup={entry['speedup']:.1f}x "
                  f"identical={entry['backend_identical']}/"
                  f"{entry['store_identical']} "
                  f"warm_sims={entry['warm_simulated_runs']}")
    if args.fleet:
        leg = payload["fleet"]
        walls = leg["wall_seconds"]
        print(f"fleet diagnosis leg ({leg['fleet']}: "
              f"{leg['instances']} instances, "
              f"{leg['failing_instances']} failing, "
              f"{leg['distinct_geometries']} geometries):")
        print(f"  cold={walls['cold']:.2f}s "
              f"warm={walls['warm']:.3f}s "
              f"parallel(w={leg['workers']})={walls['parallel']:.3f}s "
              f"speedup={leg['speedup']:.1f}x "
              f"identical={leg['identical']} "
              f"all_diagnosed={leg['all_diagnosed']} "
              f"warm_sims={leg['warm_simulated_runs']}")
    if args.bist:
        leg = payload["bist"]
        print(f"bist codegen leg (fault list {leg['fault_list']}, "
              f"n={leg['memory_size']}):")
        for entry in leg["entries"]:
            verify = " ".join(
                f"{backend}={timing['wall_seconds']:.2f}s"
                for backend, timing in entry["verify"].items())
            equivalent = all(
                timing["equivalent"]
                for timing in entry["verify"].values())
            print(f"  {entry['test']:<10s} "
                  f"compile={entry['compile_wall_seconds']*1000:.1f}ms "
                  f"verify[{verify}] "
                  f"stable={entry['netlist_stable']} "
                  f"equivalent={equivalent} "
                  f"sha={entry['netlist_sha256'][:12]}")
    print(f"report written to {args.out}")

    sparse_payload = None
    if args.sizes:
        sparse_payload = run_sparse_sweep(
            args.sizes, args.sparse_gate_size, args.min_sparse_speedup)
        write_with_history(
            args.sparse_out, sparse_payload, args.history_cap)
        print(f"sparse kernel sweep "
              f"({sparse_payload['jobs_per_size']} jobs per size):")
        for entry in sparse_payload["entries"]:
            gated = "gated" if entry["speed_gate_applies"] else "info"
            print(f"  n={entry['memory_size']:<5d} "
                  f"dense={entry['dense']['wall_seconds']:.2f}s "
                  f"sparse={entry['sparse']['wall_seconds']:.2f}s "
                  f"speedup={entry['speedup']:.1f}x "
                  f"identical={entry['identical']} [{gated}]")
        print(f"sparse sweep report written to {args.sparse_out}")

    if args.gate:
        failures = gate(payload)
        if sparse_payload is not None:
            failures += sparse_gate(sparse_payload)
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("benchmark regression gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
