#!/usr/bin/env python3
"""Campaign engine benchmark and regression gate.

Runs the same multi-test coverage-campaign workload twice -- serial
(``workers=1``, today's oracle path) and parallel (process-pool
fan-out) -- and writes ``BENCH_campaign.json`` with wall time,
contexts/second and an entry-by-entry identity verdict.

As a CI gate (``--gate``) the script fails when:

* the parallel campaign's reports differ from the serial ones in any
  way (this must never happen, on any machine), or
* the machine has at least ``--gate-cores`` cores (default 4) and the
  parallel run is slower than ``--min-speedup`` × serial (default
  1.0) on the chosen workload.

The speed leg is skipped (with a note in the JSON) on smaller
machines, where pool overhead legitimately dominates.

Usage::

    python benchmarks/bench_campaign.py --workload smoke --gate \
        --out BENCH_campaign.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.faults.lists import fault_list_1, fault_list_2
from repro.march.known import ALL_KNOWN
from repro.sim.campaign import CampaignResult, CoverageCampaign


def _workload(name: str) -> Dict[str, object]:
    """Tests and fault lists for a named workload.

    * ``tiny`` -- three tests × Fault List #2; seconds even with pool
      start-up, used by the unit tests.
    * ``smoke`` -- every known test × a 300-fault slice of Fault List
      #1; the CI gate workload (~2 s serial).
    * ``full`` -- every known test × both paper fault lists; the
      multi-test campaign workload of the acceptance criteria.
    """
    tests = [km.test for km in ALL_KNOWN.values()]
    if name == "tiny":
        return {
            "tests": tests[:3],
            "fault_lists": {"FL#2": list(fault_list_2())},
        }
    if name == "smoke":
        return {
            "tests": tests,
            "fault_lists": {"FL#1[:300]": list(fault_list_1()[:300])},
        }
    if name == "full":
        return {
            "tests": tests,
            "fault_lists": {
                "FL#1": list(fault_list_1()),
                "FL#2": list(fault_list_2()),
            },
        }
    raise SystemExit(f"unknown workload {name!r}; "
                     f"choose from tiny, smoke, full")


def _run(workload: Dict[str, object], workers: int) -> CampaignResult:
    campaign = CoverageCampaign(
        workload["tests"], workload["fault_lists"], workers=workers)
    return campaign.run()


def _timing(result: CampaignResult) -> Dict[str, object]:
    return {
        "workers": result.workers,
        "wall_seconds": result.wall_seconds,
        "contexts_simulated": result.contexts_simulated,
        "contexts_per_second": result.contexts_per_second,
    }


def run_benchmark(
    workload_name: str, workers: int, gate_cores: int, min_speedup: float
) -> Dict[str, object]:
    """Benchmark serial vs parallel; return the gate-ready payload."""
    workload = _workload(workload_name)
    serial = _run(workload, workers=1)
    parallel = _run(workload, workers=workers)
    serial_entries = [entry.to_dict() for entry in serial.entries]
    parallel_entries = [entry.to_dict() for entry in parallel.entries]
    identical = serial_entries == parallel_entries
    speedup = (
        serial.wall_seconds / parallel.wall_seconds
        if parallel.wall_seconds > 0 else 0.0)
    cores = os.cpu_count() or 1
    return {
        "workload": workload_name,
        "cpu_count": cores,
        "jobs": len(serial.entries),
        "serial": _timing(serial),
        "parallel": _timing(parallel),
        "speedup": speedup,
        "identical": identical,
        "speed_gate_applies": cores >= gate_cores,
        "min_speedup": min_speedup,
        "entries": serial_entries,
    }


def gate(payload: Dict[str, object]) -> List[str]:
    """Regression-gate verdict: a list of failure messages (empty=pass)."""
    failures = []
    if not payload["identical"]:
        failures.append(
            "serial and parallel campaign results DIVERGE -- the "
            "process-pool fan-out is broken")
    if payload["speed_gate_applies"] \
            and payload["speedup"] < payload["min_speedup"]:
        failures.append(
            f"parallel campaign is slower than the gate allows: "
            f"speedup {payload['speedup']:.2f}x < "
            f"{payload['min_speedup']:.2f}x on {payload['cpu_count']} "
            f"cores")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workload", default="smoke",
                        choices=("tiny", "smoke", "full"))
    parser.add_argument("--workers", type=int,
                        default=max(2, os.cpu_count() or 1),
                        help="parallel worker count (default: all cores, "
                             "minimum 2)")
    parser.add_argument("--out", default="BENCH_campaign.json",
                        help="output JSON path")
    parser.add_argument("--gate", action="store_true",
                        help="exit non-zero on divergence or regression")
    parser.add_argument("--gate-cores", type=int, default=4,
                        help="apply the speed leg of the gate only on "
                             "machines with at least this many cores")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="required parallel-vs-serial speedup when "
                             "the speed gate applies")
    args = parser.parse_args(argv)

    payload = run_benchmark(
        args.workload, args.workers, args.gate_cores, args.min_speedup)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(f"workload={payload['workload']} jobs={payload['jobs']} "
          f"cores={payload['cpu_count']}")
    for leg in ("serial", "parallel"):
        timing = payload[leg]
        print(f"  {leg:8s} workers={timing['workers']} "
              f"wall={timing['wall_seconds']:.2f}s "
              f"contexts/s={timing['contexts_per_second']:,.0f}")
    print(f"  speedup={payload['speedup']:.2f}x "
          f"identical={payload['identical']}")
    if payload["speed_gate_applies"]:
        print(f"  speed gate: APPLIES "
              f"(requires >= {payload['min_speedup']:.2f}x "
              f"on {payload['cpu_count']} cores)")
    else:
        print(f"  speed gate: SKIPPED "
              f"({payload['cpu_count']} cores < {args.gate_cores}; "
              f"identity check still enforced)")
    print(f"report written to {args.out}")

    if args.gate:
        failures = gate(payload)
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("benchmark regression gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
