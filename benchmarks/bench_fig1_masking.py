"""Figure 1 reproduction: linked-fault masking in action.

The paper's Figure 1 shows two disturb coupling faults with different
aggressor cells (a1, a2) and a shared victim v: performing ``0w1`` on
a1 flips the victim, performing ``0w1`` on a2 flips it back -- "the
fault effect is masked by the application of FP2".

This benchmark recreates the exact scenario, shows a linked-fault-blind
march (March C-) being fooled while the paper's March ABL and our
generated test detect it, and times the underlying simulations.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.table import TextTable
from repro.faults.library import fp_by_name
from repro.faults.linked import LinkedFault, Topology
from repro.march.known import MARCH_ABL, MARCH_C_MINUS, MARCH_SL
from repro.memory.injection import FaultInstance
from repro.memory.sram import FaultyMemory
from repro.sim.coverage import CoverageOracle


def figure1_fault() -> LinkedFault:
    """FP1 = <0w1; 0/1/->, FP2 = <0w1; 1/0/-> on distinct aggressors."""
    return LinkedFault(
        fp_by_name("CFds_0w1_v0"), fp_by_name("CFds_0w1_v1"),
        Topology.LF3)


def figure1_hard_variant() -> LinkedFault:
    """Same Figure 1 shape with non-transition-write disturbs.

    March C- detects the paper's literal ``0w1`` example thanks to the
    straddling victim (its ``⇑(r0,w1)`` reads the victim between the
    two aggressor writes), but it never performs non-transition writes,
    so the ``0w0`` variant masks perfectly against it.
    """
    return LinkedFault(
        fp_by_name("CFds_0w0_v0"), fp_by_name("CFds_0w0_v1"),
        Topology.LF3)


def test_fig1_masking_sequence(benchmark, results_dir):
    """The write-by-write masking trace of Figure 1."""
    fault = figure1_fault()

    def run_scenario():
        # a1 = 0, v = 1, a2 = 2 (victim between the aggressors).
        memory = FaultyMemory(
            3, FaultInstance.from_linked(fault, (0, 2, 1)))
        trace = []
        for cell in range(3):
            memory.write(cell, 0)
        trace.append(("initialize all cells to 0", memory.state()))
        memory.write(0, 1)
        trace.append(("w1 on a1 sensitizes FP1", memory.state()))
        observed_mid = memory[1]
        memory.write(2, 1)
        trace.append(("w1 on a2 masks it (FP2)", memory.state()))
        return trace, observed_mid, memory[1]

    trace, mid, final = benchmark(run_scenario)
    assert mid == 1      # the victim was flipped by FP1...
    assert final == 0    # ...and flipped back by FP2: masked.
    table = TextTable(["step", "memory (a1, v, a2)"])
    for step, state in trace:
        table.add_row([step, "".join(str(b) for b in state)])
    emit(results_dir, "fig1_masking_trace", table.render())


def test_fig1_blind_vs_aware_marches(benchmark, results_dir):
    """A Figure-1-shaped fault fools March C-; March ABL/SL catch it."""
    fault = figure1_hard_variant()
    oracle = CoverageOracle([fault])

    def evaluate_all():
        return {
            "March C-": oracle.evaluate(MARCH_C_MINUS.test),
            "March ABL": oracle.evaluate(MARCH_ABL.test),
            "March SL": oracle.evaluate(MARCH_SL.test),
        }

    reports = benchmark(evaluate_all)
    assert not reports["March C-"].complete
    assert reports["March ABL"].complete
    assert reports["March SL"].complete
    table = TextTable(["march test", "detects Figure 1 fault?"])
    for name, report in reports.items():
        table.add_row([name, "yes" if report.complete else "MASKED"])
    emit(results_dir, "fig1_blind_vs_aware", table.render())
