"""Figure 4 reproduction: the pattern graph PG_CF.

Figure 4 draws the 2-cell pattern graph of the linked disturb-coupling
fault of equations (12)-(14): G0 plus two bold faulty edges,
``00 ->[w1_i, r0_j] 11`` and ``11 ->[w0_i, r1_j] 00``.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.dot import pgcf_example_graph
from repro.analysis.table import TextTable
from repro.core.pattern_graph import PatternGraph
from repro.sim.coverage import make_instances


def test_fig4_pgcf_structure(benchmark, results_dir):
    graph, instance = benchmark(pgcf_example_graph)
    assert graph.vertex_count() == 4
    assert len(graph.faulty_edges) == 2
    by_src = {edge.src: edge for edge in graph.faulty_edges}
    assert by_src[(0, 0)].dst == (1, 1)
    assert by_src[(0, 0)].label == "w[0]1,r[1]0"
    assert by_src[(1, 1)].dst == (0, 0)
    assert by_src[(1, 1)].label == "w[0]0,r[1]1"
    table = TextTable(["faulty edge", "label", "component"])
    for edge in graph.faulty_edges:
        table.add_row([
            f"{''.join(map(str, edge.src))} -> "
            f"{''.join(map(str, edge.dst))}",
            edge.label, f"FP{edge.component}"])
    emit(results_dir, "fig4_pgcf_edges", table.render())
    (results_dir / "fig4_pgcf.dot").write_text(
        graph.to_dot("PGCF") + "\n")


def test_fig4_masking_pairs_definition8(benchmark, results_dir):
    """Definition 8 on PG_CF: the two bold edges mask each other."""
    graph, _ = pgcf_example_graph()
    pairs = benchmark(graph.masking_pairs)
    assert len(pairs) == 2  # each edge masks the other (cycle)
    table = TextTable(["masking edge", "masked edge"])
    for masking, masked in pairs:
        table.add_row([masking.label, masked.label])
    emit(results_dir, "fig4_masking_pairs", table.render())


def test_fig4_full_pattern_graph_construction(benchmark, fl1, results_dir):
    """Pattern-graph construction over the whole Fault List #1 --
    the structure the generation algorithm walks each iteration."""

    def build():
        graph = PatternGraph(3)
        for fault in fl1:
            for instance in make_instances(fault, 3):
                graph.add_fault_instance(instance)
        return graph

    graph = benchmark.pedantic(build, rounds=1, iterations=1)
    assert graph.vertex_count() == 8
    table = TextTable(["metric", "value"])
    table.add_row(["vertices (2^n)", graph.vertex_count()])
    table.add_row(["fault-free edges", graph.base.edge_count()])
    table.add_row(["faulty edges", len(graph.faulty_edges)])
    emit(results_dir, "fig4_full_pg", table.render())
