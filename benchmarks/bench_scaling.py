"""Scaling characteristics (DESIGN.md X3).

* simulator throughput: march operations per second on the faulty SRAM;
* batch-oracle evaluation time as the fault list grows;
* generation time versus fault-list size (the paper reports seconds on
  a 2006 laptop; our pure-Python pipeline stays in the same order of
  magnitude).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.table import TextTable
from repro.core.generator import MarchGenerator
from repro.faults.library import fp_by_name
from repro.march.known import MARCH_SL
from repro.memory.injection import FaultInstance
from repro.memory.sram import FaultyMemory
from repro.sim.campaign import CoverageCampaign
from repro.sim.coverage import CoverageOracle
from repro.sim.engine import run_march


def test_scaling_sram_throughput(benchmark):
    """Raw faulty-memory operation throughput."""
    instance = FaultInstance.from_simple(
        fp_by_name("CFds_0w1_v0"), victim=2, aggressor=0)
    memory = FaultyMemory(8, instance)

    def churn():
        for address in range(8):
            memory.write(address, 1)
            memory.read(address)
            memory.write(address, 0)
            memory.read(address)

    benchmark(churn)


def test_scaling_march_simulation(benchmark):
    """One full March SL run over a 64-cell faulty memory."""
    instance = FaultInstance.from_simple(
        fp_by_name("CFds_0w1_v0"), victim=63, aggressor=0)

    def simulate():
        memory = FaultyMemory(64, instance)
        return run_march(MARCH_SL.test, memory)

    benchmark(simulate)


@pytest.mark.parametrize("size", [54, 216, 876])
def test_scaling_oracle_evaluation(benchmark, fl1, size, results_dir):
    """Batch coverage evaluation vs fault-list size."""
    subset = fl1[:size]
    oracle = CoverageOracle(subset)
    report = benchmark.pedantic(
        lambda: oracle.evaluate(MARCH_SL.test), rounds=1, iterations=2)
    assert report.complete


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_scaling_campaign_workers(benchmark, fl1, workers, results_dir):
    """Campaign fan-out vs worker count on the full FL#1 list."""
    campaign = CoverageCampaign(
        MARCH_SL.test, {"FL#1": fl1}, workers=workers)
    result = benchmark.pedantic(campaign.run, rounds=1, iterations=1)
    assert result.complete
    table = TextTable(["workers", "wall (s)", "contexts/s"])
    table.add_row([workers, f"{result.wall_seconds:.2f}",
                   f"{result.contexts_per_second:,.0f}"])
    emit(results_dir, f"scaling_campaign_w{workers}", table.render())


@pytest.mark.parametrize("size", [24, 108, 432, 876])
def test_scaling_generation_time(benchmark, fl1, size, results_dir):
    """Generation time vs fault-list size (pruning off to isolate the
    search loop)."""
    subset = fl1[:size]
    result = benchmark.pedantic(
        lambda: MarchGenerator(
            subset, name=f"scale-{size}", prune=False).generate(),
        rounds=1, iterations=1)
    assert result.complete
    table = TextTable(["faults", "O(n)", "CPU (s)"])
    table.add_row([size, f"{result.test.complexity}n",
                   f"{result.seconds:.2f}"])
    emit(results_dir, f"scaling_generation_{size}", table.render())
