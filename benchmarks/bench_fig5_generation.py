"""Figure 5 reproduction: the generation algorithm's inner loop.

Figure 5 gives the pseudocode: build sequences of operations from
SO-compatible faulty edges, apply them to every memory cell, delete
covered faults, repeat until the fault list is empty.  These benchmarks
time the algorithm's two inner mechanisms in isolation (SO proposal by
pattern-graph walking, candidate scoring by incremental simulation) and
one full generation step.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.table import TextTable
from repro.core.generator import ELEMENT_SHAPES, MarchGenerator, \
    shape_operations
from repro.core.pattern_graph import PatternGraph
from repro.core.walker import PatternWalker
from repro.faults.operations import write
from repro.march.element import AddressOrder, MarchElement
from repro.sim.coverage import IncrementalCoverage, make_instances


def _pattern_graph(faults, cells=3):
    graph = PatternGraph(cells)
    for fault in faults:
        for instance in make_instances(fault, cells):
            graph.add_fault_instance(instance)
    return graph


def test_fig5_so_construction(benchmark, fl1, results_dir):
    """Step 1.b: building sequences of operations by PG walk."""
    graph = _pattern_graph(fl1)
    walker = PatternWalker(graph)
    proposals = benchmark(lambda: walker.proposals(entry_value=0))
    assert proposals
    table = TextTable(["SO proposal (as march element)"])
    for element in proposals:
        table.add_row([element.notation()])
    emit(results_dir, "fig5_so_proposals", table.render())


def test_fig5_candidate_scoring(benchmark, fl2, results_dir):
    """Step 1.c: scoring one candidate element by fault simulation."""
    oracle = IncrementalCoverage(fl2)
    oracle.append(MarchElement(AddressOrder.ANY, (write(0),)))
    candidate = MarchElement(
        AddressOrder.ANY, shape_operations(ELEMENT_SHAPES[9], 0))
    newly, resolved = benchmark(lambda: oracle.probe(candidate))
    assert newly >= 0 and resolved >= 0


def test_fig5_full_iteration(benchmark, fl2, results_dir):
    """One complete propose-score-commit iteration on Fault List #2."""

    def one_iteration():
        generator = MarchGenerator(fl2, name="fig5 step")
        oracle = IncrementalCoverage(fl2)
        init = MarchElement(AddressOrder.ANY, (write(0),))
        oracle.append(init)
        best = generator._best_single([init], 0, oracle)
        assert best is not None
        oracle.append(best)
        return best, oracle.uncovered_count

    best, left = benchmark(one_iteration)
    table = TextTable(["accepted element", "faults left"])
    table.add_row([best.notation(), left])
    emit(results_dir, "fig5_iteration", table.render())
