#!/usr/bin/env python3
"""Qualification-service benchmark and regression gate.

Starts the HTTP job API (:func:`repro.service.server.start_service`)
on an ephemeral port, then drives it with a small fleet of client
threads submitting a mixed load: ``--unique`` distinct campaign jobs,
each submitted ``--duplicates`` times concurrently.  The run measures

* **submit latency** -- wall time of each ``POST /jobs`` round trip
  (the spec is validated and content-addressed inline, so this is the
  service's interactive surface), reported as p50/p99/max;
* **coalescing** -- the duplicate submissions must all collapse onto
  the first record's execution: ``jobs_executed == unique`` and the
  coalescing ratio (observed coalesced submissions / expected
  duplicates) must be exactly 1.0;
* **identity** -- every job's ``GET /jobs/{id}/result`` bytes must
  equal the local :class:`repro.service.jobs.JobRunner` output for
  the same spec (which PR 9's tests pin byte-identical to the CLI
  artifacts).

Writes ``BENCH_service.json`` (``--out``) with the current run's
payload plus a bounded per-key **history** (same rotation scheme as
``bench_campaign.py``; capped at ``--history-cap`` records).

As a CI gate (``--gate``) the script fails when:

* any result diverges from the local runner's bytes (never
  acceptable, on any machine), or
* the coalescing ratio is not 1.0 or any duplicate triggered a second
  execution -- request coalescing is correctness, not tuning, or
* any job failed or was rejected, or
* submit p99 exceeds ``--max-p99-ms`` (default 500 ms -- generous
  because CI machines are noisy; the point is catching accidental
  simulation work on the submit path, which costs seconds).

Usage::

    python benchmarks/bench_service.py --gate --out BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.service import JobRunner, JobSpec, ServiceClient
from repro.service.server import start_service


def _jobs(unique: int) -> List[dict]:
    """The distinct job documents of the workload.

    Small campaigns (24 single-cell LFs) over distinct memory sizes:
    cheap enough that the benchmark is dominated by the service
    plumbing under test, distinct enough that nothing coalesces
    across them.
    """
    return [
        {"kind": "campaign", "tests": ["March SL"],
         "fault_lists": ["lf1"], "sizes": [3 + index]}
        for index in range(unique)
    ]


def _percentile(samples: Sequence[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_benchmark(
    unique: int,
    duplicates: int,
    clients: int,
    store_path: Optional[str],
) -> Dict[str, object]:
    """Drive the service; return the gate-ready payload."""
    documents = _jobs(unique)
    submissions = [
        dict(document)
        for document in documents
        for _ in range(duplicates)
    ]
    handle = start_service(
        port=0, store_path=store_path, job_workers=2,
        rate=10_000.0, burst=10_000)
    try:
        latencies: List[float] = []
        responses: List[dict] = []
        errors: List[str] = []
        lock = threading.Lock()
        start_barrier = threading.Barrier(clients)
        wall_start = time.perf_counter()

        def drive(worker: int) -> None:
            client = ServiceClient(
                handle.url, client_id=f"bench-{worker}")
            start_barrier.wait()
            for index in range(worker, len(submissions), clients):
                begin = time.perf_counter()
                try:
                    response = client.submit(submissions[index])
                except Exception as error:  # noqa: BLE001
                    with lock:
                        errors.append(
                            f"{type(error).__name__}: {error}")
                    continue
                elapsed = time.perf_counter() - begin
                with lock:
                    latencies.append(elapsed)
                    responses.append(response)

        threads = [
            threading.Thread(target=drive, args=(worker,))
            for worker in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        poller = ServiceClient(handle.url, client_id="bench-poll")
        job_ids = sorted({response["id"] for response in responses})
        finals = {job_id: poller.wait(job_id, timeout=600)
                  for job_id in job_ids}
        wall_seconds = time.perf_counter() - wall_start

        identical = True
        for document in documents:
            spec = JobSpec.from_dict(document)
            served = poller.result_bytes(spec.job_id)
            local = JobRunner().run(spec).report_bytes
            identical = identical and served == local

        metrics = handle.service.metrics()
    finally:
        handle.stop()

    expected_duplicates = unique * (duplicates - 1)
    ratio = (metrics["jobs_coalesced"] / expected_duplicates
             if expected_duplicates else 1.0)
    return {
        "unique_jobs": unique,
        "duplicates_per_job": duplicates,
        "clients": clients,
        "submissions": len(submissions),
        "wall_seconds": wall_seconds,
        "submit_latency_ms": {
            "p50": _percentile(latencies, 0.50) * 1000.0,
            "p99": _percentile(latencies, 0.99) * 1000.0,
            "max": max(latencies, default=0.0) * 1000.0,
            "samples": len(latencies),
        },
        "coalescing_ratio": ratio,
        "jobs_executed": metrics["jobs_executed"],
        "jobs_failed": metrics["jobs_failed"],
        "failed_statuses": sorted(
            status["status"] for status in finals.values()
            if status["status"] != "done"),
        "submit_errors": errors,
        "identical": identical,
        "metrics": metrics,
    }


def gate(payload: Dict[str, object], max_p99_ms: float) -> List[str]:
    """Regression-gate verdict: failure messages (empty = pass)."""
    failures = []
    if not payload["identical"]:
        failures.append(
            "service results DIVERGE from the local JobRunner's "
            "bytes -- the HTTP surface is not byte-identical to the "
            "CLI")
    if payload["coalescing_ratio"] != 1.0:
        failures.append(
            f"coalescing ratio {payload['coalescing_ratio']:.3f} != "
            f"1.0 -- duplicate submissions are not collapsing onto "
            f"one execution")
    if payload["jobs_executed"] != payload["unique_jobs"]:
        failures.append(
            f"{payload['jobs_executed']} executions for "
            f"{payload['unique_jobs']} unique job(s) -- a duplicate "
            f"slipped past request coalescing")
    if payload["jobs_failed"] or payload["failed_statuses"]:
        failures.append(
            f"{payload['jobs_failed']} job(s) failed "
            f"({payload['failed_statuses']})")
    if payload["submit_errors"]:
        failures.append(
            f"{len(payload['submit_errors'])} submission(s) "
            f"errored: {payload['submit_errors'][:3]}")
    p99 = payload["submit_latency_ms"]["p99"]
    if p99 > max_p99_ms:
        failures.append(
            f"submit p99 {p99:.1f} ms exceeds the {max_p99_ms:.0f} "
            f"ms gate -- the submit path must stay "
            f"validation+hashing, never simulation")
    return failures


def _history_record(payload: Dict[str, object]) -> dict:
    return {
        "wall_seconds": payload["wall_seconds"],
        "submit_p50_ms": payload["submit_latency_ms"]["p50"],
        "submit_p99_ms": payload["submit_latency_ms"]["p99"],
        "coalescing_ratio": payload["coalescing_ratio"],
        "identical": payload["identical"],
    }


def write_with_history(
    path: str, payload: Dict[str, object], cap: int
) -> None:
    """Write *payload* to *path*, rotating a bounded history.

    Same scheme as ``bench_campaign.py``: the previous file's
    ``history`` map is carried forward, this run's compact record is
    appended per key, each key keeps its last *cap* records.
    """
    history: Dict[str, List[dict]] = {}
    try:
        with open(path) as handle:
            previous = json.load(handle)
        if isinstance(previous, dict):
            candidate = previous.get("history", {})
            if isinstance(candidate, dict):
                history = {
                    key: list(entries)
                    for key, entries in candidate.items()
                    if isinstance(entries, list)
                }
    except (OSError, ValueError):
        pass
    key = (f"service unique={payload['unique_jobs']} "
           f"dup={payload['duplicates_per_job']} "
           f"clients={payload['clients']}")
    history.setdefault(key, []).append(_history_record(payload))
    history[key] = history[key][-cap:]
    payload = dict(payload)
    payload["history"] = history
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0])
    parser.add_argument("--unique", type=int, default=4,
                        help="distinct jobs in the workload "
                             "(default 4)")
    parser.add_argument("--duplicates", type=int, default=4,
                        help="submissions per distinct job "
                             "(default 4; the extras must coalesce)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads (default 4)")
    parser.add_argument("--store-path", metavar="PATH",
                        help="back the service with this SQLite "
                             "store (default: a temporary file)")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="output JSON path")
    parser.add_argument("--gate", action="store_true",
                        help="exit non-zero on divergence, missed "
                             "coalescing or latency regression")
    parser.add_argument("--max-p99-ms", type=float, default=500.0,
                        help="submit-latency p99 ceiling for the "
                             "gate (default 500 ms)")
    parser.add_argument("--history-cap", type=int, default=20,
                        help="history records kept per benchmark key")
    args = parser.parse_args(argv)

    if args.duplicates < 2:
        raise SystemExit("--duplicates must be >= 2 (the benchmark "
                         "exists to observe coalescing)")

    store_path = args.store_path
    scratch = None
    if store_path is None:
        scratch = tempfile.TemporaryDirectory(prefix="bench-service-")
        store_path = os.path.join(scratch.name, "q.sqlite")
    try:
        payload = run_benchmark(
            args.unique, args.duplicates, args.clients, store_path)
    finally:
        if scratch is not None:
            scratch.cleanup()
    write_with_history(args.out, payload, args.history_cap)

    latency = payload["submit_latency_ms"]
    print(f"service load: {payload['submissions']} submissions "
          f"({payload['unique_jobs']} unique x "
          f"{payload['duplicates_per_job']}) over "
          f"{payload['clients']} clients in "
          f"{payload['wall_seconds']:.2f}s")
    print(f"  submit latency: p50={latency['p50']:.1f}ms "
          f"p99={latency['p99']:.1f}ms max={latency['max']:.1f}ms "
          f"({latency['samples']} samples)")
    print(f"  coalescing: ratio={payload['coalescing_ratio']:.3f} "
          f"executed={payload['jobs_executed']} "
          f"coalesced={payload['metrics']['jobs_coalesced']}")
    print(f"  identical={payload['identical']} "
          f"failed={payload['jobs_failed']}")
    print(f"report written to {args.out}")

    if args.gate:
        failures = gate(payload, args.max_p99_ms)
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("service benchmark gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
