"""Extended evaluation: coverage matrix of every known march test.

Not a single paper table, but the union of the coverage claims the
paper makes in Sections 1 and 6: linked-fault-blind tests lose coverage
on the linked lists, the linked-fault tests reach 100 %, and the
generated tests match the published ones.  The matrix makes all of it
visible at once.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.compare import coverage_matrix
from repro.march.known import ALL_KNOWN
from repro.sim.campaign import CoverageCampaign
from repro.sim.coverage import CoverageOracle

EXPECTED_COMPLETE_ON_FL1 = {"March ABL", "March SL", "43n March Test"}
EXPECTED_COMPLETE_ON_FL2 = {
    "March ABL", "March RABL", "March ABL1", "March SL", "March LF1",
    "43n March Test", "March SS",
}


def test_coverage_matrix_all_known(benchmark, fl1, fl2, simple_faults,
                                   results_dir):
    tests = [km.test for km in ALL_KNOWN.values()]
    lists = {"FL#1": fl1, "FL#2": fl2, "simple": simple_faults}
    table = benchmark.pedantic(
        lambda: coverage_matrix(tests, lists), rounds=1, iterations=1)
    emit(results_dir, "coverage_matrix", table.render())


def test_campaign_all_known(benchmark, fl1, fl2, simple_faults,
                            results_dir):
    """The same grid as one explicit campaign (per-job table + rates)."""
    tests = [km.test for km in ALL_KNOWN.values()]
    lists = {"FL#1": fl1, "FL#2": fl2, "simple": simple_faults}
    campaign = CoverageCampaign(tests, lists)
    result = benchmark.pedantic(campaign.run, rounds=1, iterations=1)
    emit(results_dir, "campaign_all_known",
         result.render() + "\n" + result.summary())


def test_complete_coverage_claims(benchmark, fl1, fl2, results_dir):
    """Assert the exact 100 % membership sets on both lists."""
    oracle1 = CoverageOracle(fl1)
    oracle2 = CoverageOracle(fl2)

    def classify():
        complete1 = {
            name for name, km in ALL_KNOWN.items()
            if oracle1.evaluate(km.test).complete}
        complete2 = {
            name for name, km in ALL_KNOWN.items()
            if oracle2.evaluate(km.test).complete}
        return complete1, complete2

    complete1, complete2 = benchmark.pedantic(
        classify, rounds=1, iterations=1)
    assert complete1 == EXPECTED_COMPLETE_ON_FL1
    assert complete2 == EXPECTED_COMPLETE_ON_FL2
